//! Step 1 of the analysis: detecting branch execution interleaving from
//! instruction-count timestamps (§4.1).
//!
//! Each static branch remembers the timestamp of its previous dynamic
//! instance. When it executes again, every branch whose *latest* execution
//! timestamp exceeds that previous timestamp has interleaved with it since
//! then, and each such pair's interleave counter is incremented once — the
//! paper's Figure 1 procedure, verbatim.
//!
//! [`interleave_counts`] maintains a recency index of
//! `(latest timestamp, branch)` pairs so each detection is a binary
//! search plus a short scan over exactly the branches involved, costing
//! `O(k + log n)` per dynamic branch where `k` is the instantaneous
//! working-set size — the very quantity the paper shows stays small.
//! Because trace timestamps are nondecreasing, the index is a flat
//! append-only ring ([`crate::recency::RecencyRing`]) rather than a
//! search tree: inserts land at the tail, and dead entries are reclaimed
//! by amortised compaction. [`interleave_counts_naive`] is an independent
//! linear-scan oracle used by the tests.

use crate::recency::RecencyRing;
use bwsa_graph::GraphBuilder;
use bwsa_trace::Trace;

/// Computes pairwise interleave counts for every branch pair in the trace.
///
/// The returned [`GraphBuilder`] has one node per static branch (node id =
/// [`bwsa_trace::BranchId`] index) and one weighted edge per interleaving
/// pair; feed it to [`bwsa_graph::GraphBuilder::build`] and threshold with
/// [`bwsa_graph::ConflictGraph::pruned`], or use
/// [`crate::conflict::ConflictAnalysis`] which does both.
///
/// Ties: two branches stamped with the *same* timestamp are treated as
/// simultaneous, not interleaved (the paper requires a strictly greater
/// stamp).
///
/// # Example
///
/// ```
/// use bwsa_core::interleave_counts;
/// use bwsa_trace::TraceBuilder;
///
/// // Figure 1: A(5) B(10) C(15) A(20) → A/B and A/C interleave once.
/// let mut t = TraceBuilder::new("fig1");
/// t.record(0xa, true, 5).record(0xb, true, 10).record(0xc, true, 15).record(0xa, true, 20);
/// let g = interleave_counts(&t.finish()).build();
/// assert_eq!(g.edge_weight(0, 1), Some(1)); // A–B
/// assert_eq!(g.edge_weight(0, 2), Some(1)); // A–C
/// assert_eq!(g.edge_weight(1, 2), None);    // B and C never re-executed
/// ```
pub fn interleave_counts(trace: &Trace) -> GraphBuilder {
    let n = trace.static_branch_count();
    let mut builder = GraphBuilder::new(n as u32);
    let mut last_stamp: Vec<Option<u64>> = vec![None; n];
    let records = trace
        .indexed_records()
        .map(|(id, rec)| (id.as_u32(), rec.time.get()));
    interleave_into(&mut builder, &mut last_stamp, records);
    builder
}

/// The Figure 1 detection procedure over pre-interned `(branch, stamp)`
/// pairs, resuming from (and mutating) an explicit latest-stamp state.
///
/// This is the shared core of [`interleave_counts`] (which starts from an
/// empty state) and the parallel shard engine in [`crate::merge`] (which
/// seeds each shard with the latest stamps accumulated by every earlier
/// shard, making the sharded run bit-identical to the serial one). The
/// recency index is rebuilt from `last_stamp`, whose entries are exactly
/// `(last_stamp[b], b)` for every executed branch — the same argument that
/// makes [`StreamingInterleave::from_parts`] an exact resume.
///
/// `builder` must already declare at least as many nodes as any branch id
/// in `records`; `last_stamp` is grown on demand.
pub(crate) fn interleave_into(
    builder: &mut GraphBuilder,
    last_stamp: &mut Vec<Option<u64>>,
    records: impl Iterator<Item = (u32, u64)>,
) {
    // Recency index: one live (latest stamp, branch) entry per executed
    // branch, kept sorted by exploiting the monotone timestamps.
    let mut recency = RecencyRing::from_stamps(last_stamp);
    // Reusable scratch for the branches hit by each scan.
    let mut hits: Vec<u32> = Vec::new();

    for (node, t) in records {
        if node as usize >= last_stamp.len() {
            last_stamp.resize(node as usize + 1, None);
        }
        if let Some(prev) = last_stamp[node as usize] {
            // Every branch whose latest stamp is strictly greater than
            // this branch's previous stamp interleaved with it.
            hits.clear();
            recency.collect_after(prev, node, &mut hits);
            for &b in &hits {
                builder.add_edge(node, b, 1);
            }
        }
        recency.record(node, t);
        last_stamp[node as usize] = Some(t);
    }
}

/// Reference implementation of [`interleave_counts`], independent of the
/// fast engine's recency index.
///
/// Maintains the latest stamp per branch in a plain `HashMap` (updated
/// incrementally — no per-record rebuild, so property tests can drive it
/// over large traces) and, on each re-execution, scans *every* known
/// branch rather than an ordered window. Its only shared assumption with
/// the fast engine is the paper's strictly-greater rule itself.
pub fn interleave_counts_naive(trace: &Trace) -> GraphBuilder {
    let n = trace.static_branch_count();
    let mut builder = GraphBuilder::new(n as u32);
    let mut last_stamp: Vec<Option<u64>> = vec![None; n];
    // Latest stamp per branch over the records consumed so far.
    let mut seen: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for (id, rec) in trace.indexed_records() {
        let node = id.as_u32();
        let t = rec.time.get();
        if let Some(prev_t) = last_stamp[node as usize] {
            for (&b, &bt) in &seen {
                if b != node && bt > prev_t {
                    builder.add_edge(node, b, 1);
                }
            }
        }
        seen.insert(node, t);
        last_stamp[node as usize] = Some(t);
    }
    builder
}

/// Streaming variant of [`interleave_counts`]: consumes any fallible
/// record iterator (e.g. a [`bwsa_trace::stream::StreamReader`] over a
/// trace file) without materialising the trace, interning static
/// branches by pc on the fly.
///
/// Returns the interleave-count builder together with the pc ↔ id
/// interner needed to relate graph nodes back to branches.
///
/// Memory use is `O(static branches + edges)` — independent of trace
/// length — so arbitrarily long profiling runs can be analysed.
///
/// # Errors
///
/// Propagates the first error the record source yields.
///
/// # Example
///
/// ```
/// use bwsa_core::interleave::interleave_counts_streaming;
/// use bwsa_trace::BranchRecord;
///
/// # fn main() -> Result<(), bwsa_trace::TraceError> {
/// let records = [(0xa, 5), (0xb, 10), (0xc, 15), (0xa, 20)]
///     .map(|(pc, t)| Ok(BranchRecord::from_raw(pc, true, t)));
/// let (builder, table) = interleave_counts_streaming(records)?;
/// let g = builder.build();
/// assert_eq!(table.len(), 3);
/// assert_eq!(g.edge_weight(0, 1), Some(1)); // A–B
/// assert_eq!(g.edge_weight(0, 2), Some(1)); // A–C
/// # Ok(())
/// # }
/// ```
pub fn interleave_counts_streaming<I>(
    records: I,
) -> Result<(GraphBuilder, bwsa_trace::BranchTable), bwsa_trace::TraceError>
where
    I: IntoIterator<Item = Result<bwsa_trace::BranchRecord, bwsa_trace::TraceError>>,
{
    let mut engine = StreamingInterleave::new();
    for record in records {
        engine.push(&record?);
    }
    Ok(engine.finish())
}

/// Incremental interleave-detection engine — the state behind
/// [`interleave_counts_streaming`], exposed as a struct so it can be
/// driven record-by-record, suspended into a checkpoint, and resumed
/// (see [`crate::StreamingAnalysis`]).
///
/// Feeding every record of a trace through [`StreamingInterleave::push`]
/// and calling [`StreamingInterleave::finish`] produces exactly the
/// builder/table pair of [`interleave_counts_streaming`].
#[derive(Debug, Clone)]
pub struct StreamingInterleave {
    pub(crate) table: bwsa_trace::BranchTable,
    pub(crate) builder: GraphBuilder,
    /// `last_stamp[b]` = timestamp of b's previous dynamic instance.
    pub(crate) last_stamp: Vec<Option<u64>>,
    /// Recency index: one live (latest stamp, branch) entry per executed
    /// branch. Derivable from `last_stamp`, so checkpoints omit it —
    /// see [`StreamingInterleave::from_parts`].
    recency: RecencyRing,
    /// Reusable scratch for the branches hit by each scan.
    hits: Vec<u32>,
}

impl StreamingInterleave {
    /// Creates an empty engine with no branches seen.
    pub fn new() -> Self {
        StreamingInterleave {
            table: bwsa_trace::BranchTable::new(),
            builder: GraphBuilder::new(0),
            last_stamp: Vec::new(),
            recency: RecencyRing::new(),
            hits: Vec::new(),
        }
    }

    /// Reassembles an engine from checkpointed state: the pc interner,
    /// the accumulated edge builder, and the per-branch latest stamps.
    /// The recency index is rebuilt from `last_stamp`, since its entries
    /// are exactly `(last_stamp[b], b)` for every executed branch.
    pub(crate) fn from_parts(
        table: bwsa_trace::BranchTable,
        builder: GraphBuilder,
        last_stamp: Vec<Option<u64>>,
    ) -> Self {
        let recency = RecencyRing::from_stamps(&last_stamp);
        StreamingInterleave {
            table,
            builder,
            last_stamp,
            recency,
            hits: Vec::new(),
        }
    }

    /// Number of distinct static branches seen so far.
    pub fn branch_count(&self) -> usize {
        self.table.len()
    }

    /// Consumes one dynamic branch record, interning its pc and crediting
    /// an interleave to every branch executed since this branch's previous
    /// instance. Returns the record's static branch id.
    pub fn push(&mut self, rec: &bwsa_trace::BranchRecord) -> bwsa_trace::BranchId {
        let id = self.table.intern(rec.pc);
        let node = id.as_u32();
        if node as usize >= self.last_stamp.len() {
            self.last_stamp.resize(node as usize + 1, None);
            self.builder.ensure_nodes(node + 1);
        }
        let t = rec.time.get();
        if let Some(prev) = self.last_stamp[node as usize] {
            self.hits.clear();
            self.recency.collect_after(prev, node, &mut self.hits);
            for &b in &self.hits {
                self.builder.add_edge(node, b, 1);
            }
        }
        self.recency.record(node, t);
        self.last_stamp[node as usize] = Some(t);
        id
    }

    /// Yields the accumulated interleave counts and the pc ↔ id interner.
    pub fn finish(self) -> (GraphBuilder, bwsa_trace::BranchTable) {
        (self.builder, self.table)
    }
}

impl Default for StreamingInterleave {
    fn default() -> Self {
        StreamingInterleave::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    fn weights(b: &GraphBuilder) -> Vec<(u32, u32, u64)> {
        let g = b.build();
        let mut v: Vec<_> = g.iter_edges().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn figure_1_example() {
        // The paper's Figure 1, extended by one more round.
        let mut t = TraceBuilder::new("fig1");
        t.record(0xa, true, 5)
            .record(0xb, true, 10)
            .record(0xc, true, 15)
            .record(0xa, true, 20) // A sees B, C
            .record(0xb, true, 25) // B sees C(15)? no: C=15 > B's prev 10 → yes; and A(20)
            .record(0xc, true, 30); // C sees A(20), B(25)
        let g = interleave_counts(&t.finish()).build();
        assert_eq!(g.edge_weight(0, 1), Some(2)); // A–B both directions
        assert_eq!(g.edge_weight(0, 2), Some(2)); // A–C
        assert_eq!(g.edge_weight(1, 2), Some(2)); // B–C
    }

    #[test]
    fn tight_loop_of_one_branch_has_no_edges() {
        let mut t = TraceBuilder::new("solo");
        for i in 1..=100u64 {
            t.record(0x40, true, i * 5);
        }
        let b = interleave_counts(&t.finish());
        assert_eq!(b.edge_count(), 0);
    }

    #[test]
    fn two_alternating_branches_interleave_every_round() {
        let mut t = TraceBuilder::new("alt");
        for i in 0..10u64 {
            t.record(0x40 + (i % 2) * 4, true, i + 1);
        }
        let g = interleave_counts(&t.finish()).build();
        // A executes at 1,3,5,7,9; from the 2nd instance on it sees B: 4
        // detections. Same for B → weight 8.
        assert_eq!(g.edge_weight(0, 1), Some(8));
    }

    #[test]
    fn phases_do_not_interleave_without_revisit() {
        // A A A then B B B: B never executes between two A instances and
        // vice versa.
        let mut t = TraceBuilder::new("phase");
        for i in 1..=3u64 {
            t.record(0xa, true, i);
        }
        for i in 4..=6u64 {
            t.record(0xb, true, i);
        }
        let b = interleave_counts(&t.finish());
        assert_eq!(b.edge_count(), 0);
    }

    #[test]
    fn phase_revisit_creates_one_detection() {
        // A A, B B, A: the final A sees B once (one detection event),
        // regardless of how many times B ran in between.
        let mut t = TraceBuilder::new("revisit");
        t.record(0xa, true, 1)
            .record(0xa, true, 2)
            .record(0xb, true, 3)
            .record(0xb, true, 4)
            .record(0xa, true, 5);
        let g = interleave_counts(&t.finish()).build();
        assert_eq!(g.edge_weight(0, 1), Some(1));
    }

    #[test]
    fn equal_timestamps_do_not_interleave() {
        let mut t = TraceBuilder::new("ties");
        t.record(0xa, true, 5)
            .record(0xb, true, 5)
            .record(0xa, true, 5);
        let b = interleave_counts(&t.finish());
        assert_eq!(
            b.edge_count(),
            0,
            "stamps must be strictly greater to count"
        );
    }

    #[test]
    fn naive_and_fast_agree_on_small_cases() {
        let mut t = TraceBuilder::new("mix");
        let pcs = [0xa, 0xb, 0xc, 0xa, 0xc, 0xb, 0xa, 0xd, 0xb, 0xd, 0xa, 0xc];
        for (i, pc) in pcs.into_iter().enumerate() {
            t.record(pc, i % 3 == 0, (i as u64 + 1) * 7);
        }
        let trace = t.finish();
        assert_eq!(
            weights(&interleave_counts(&trace)),
            weights(&interleave_counts_naive(&trace))
        );
    }

    #[test]
    fn streaming_matches_in_memory_on_a_real_trace() {
        let mut t = TraceBuilder::new("s");
        let pcs = [0xa, 0xb, 0xa, 0xc, 0xb, 0xa, 0xd, 0xc, 0xa, 0xb];
        for (i, pc) in pcs.into_iter().enumerate() {
            t.record(pc, i % 2 == 0, (i as u64 + 1) * 3);
        }
        let trace = t.finish();
        let in_memory = interleave_counts(&trace).build();
        let records = trace.records().iter().map(|r| Ok(*r));
        let (builder, table) = interleave_counts_streaming(records).unwrap();
        assert_eq!(builder.build(), in_memory);
        assert_eq!(table.len(), trace.static_branch_count());
        // Interning order matches the trace's.
        for (id, pc) in trace.table().iter() {
            assert_eq!(table.id_of(pc), Some(id));
        }
    }

    #[test]
    fn streaming_propagates_source_errors() {
        let records = vec![
            Ok(bwsa_trace::BranchRecord::from_raw(0xa, true, 1)),
            Err(bwsa_trace::TraceError::format("boom")),
        ];
        assert!(interleave_counts_streaming(records).is_err());
    }

    #[test]
    fn streaming_from_stream_reader_roundtrip() {
        use bwsa_trace::stream::{StreamReader, StreamWriter};
        let mut t = TraceBuilder::new("s");
        for i in 0..500u64 {
            t.record(0x100 + (i % 5) * 4, i % 3 == 0, i + 1);
        }
        let trace = t.finish();
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf, "s").unwrap();
        for r in trace.records() {
            w.push(*r).unwrap();
        }
        w.finish(0).unwrap();
        let reader = StreamReader::new(&buf[..]).unwrap();
        let (builder, _) = interleave_counts_streaming(reader).unwrap();
        assert_eq!(builder.build(), interleave_counts(&trace).build());
    }

    #[test]
    fn max_stamp_reexecution_does_not_overflow() {
        // Regression: the old recency index scanned `(prev + 1, 0)..`,
        // which overflowed (release-checked panic) when a branch stamped
        // u64::MAX re-executed. Ties at the maximum stamp must simply not
        // interleave.
        let mut t = TraceBuilder::new("max");
        t.record(0xa, true, u64::MAX - 1)
            .record(0xb, true, u64::MAX)
            .record(0xb, true, u64::MAX) // prev == u64::MAX re-executes
            .record(0xa, true, u64::MAX); // A sees B (MAX > MAX-1)
        let trace = t.finish();
        let g = interleave_counts(&trace).build();
        assert_eq!(g.edge_weight(0, 1), Some(1), "only A's revisit detects");
        assert_eq!(
            weights(&interleave_counts(&trace)),
            weights(&interleave_counts_naive(&trace))
        );
    }

    #[test]
    fn streaming_push_handles_max_stamp_reexecution() {
        let mut engine = StreamingInterleave::new();
        for (pc, t) in [(0xa, u64::MAX), (0xb, u64::MAX), (0xa, u64::MAX)] {
            engine.push(&bwsa_trace::BranchRecord::from_raw(pc, true, t));
        }
        let (builder, _) = engine.finish();
        assert_eq!(builder.edge_count(), 0, "equal stamps never interleave");
    }

    #[test]
    fn empty_trace_yields_empty_builder() {
        let b = interleave_counts(&bwsa_trace::Trace::new("empty"));
        assert_eq!(b.node_count(), 0);
        assert_eq!(b.edge_count(), 0);
    }

    #[test]
    fn suspended_and_resumed_engine_matches_straight_run() {
        let mut t = TraceBuilder::new("resume");
        let pcs = [0xa, 0xb, 0xa, 0xc, 0xb, 0xa, 0xd, 0xc, 0xa, 0xb, 0xc, 0xd];
        for (i, pc) in pcs.into_iter().enumerate() {
            t.record(pc, i % 2 == 0, (i as u64 + 1) * 3);
        }
        let trace = t.finish();
        let records = trace.records();
        for split in 0..records.len() {
            // Run the first `split` records, tear the engine down to the
            // parts a checkpoint stores, rebuild, and finish the rest.
            let mut first = StreamingInterleave::new();
            for r in &records[..split] {
                first.push(r);
            }
            let StreamingInterleave {
                table,
                builder,
                last_stamp,
                ..
            } = first;
            let mut resumed = StreamingInterleave::from_parts(table, builder, last_stamp);
            for r in &records[split..] {
                resumed.push(r);
            }
            let (resumed_builder, _) = resumed.finish();
            assert_eq!(
                weights(&resumed_builder),
                weights(&interleave_counts(&trace)),
                "split at {split}"
            );
        }
    }
}
