//! Branch classification (§5.2, after Chang et al., MICRO 1994).
//!
//! Branches that are highly biased towards one direction ("either greater
//! than 99% taken or less than 1% taken") can share a history register
//! without hurting prediction — "their histories would be the same
//! anyway". Classification therefore (a) removes conflict edges between
//! two branches of the same biased class, and (b) lets allocation reserve
//! just two BHT entries for all biased branches.

use bwsa_graph::ConflictGraph;
use bwsa_trace::{profile::BranchProfile, BranchId};
use serde::{Deserialize, Serialize};

/// The bias class of a static branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BiasClass {
    /// Taken rate at or above the taken threshold (default ≥ 99%).
    BiasedTaken,
    /// Taken rate at or below the not-taken threshold (default ≤ 1%).
    BiasedNotTaken,
    /// Everything else.
    Mixed,
}

/// Per-branch bias classes computed from a profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    classes: Vec<BiasClass>,
    taken_threshold: f64,
    not_taken_threshold: f64,
}

/// Classifies every profiled branch with the paper's thresholds
/// (≥ 99% taken → [`BiasClass::BiasedTaken`], ≤ 1% taken →
/// [`BiasClass::BiasedNotTaken`]).
///
/// # Example
///
/// ```
/// use bwsa_core::{classify, BiasClass};
/// use bwsa_trace::{profile::BranchProfile, BranchId, TraceBuilder};
///
/// let mut t = TraceBuilder::new("c");
/// for i in 0..200u64 {
///     t.record(0x100, true, 3 * i + 1);        // always taken
///     t.record(0x104, false, 3 * i + 2);       // never taken
///     t.record(0x108, i % 2 == 0, 3 * i + 3);  // 50/50
/// }
/// let profile = BranchProfile::from_trace(&t.finish());
/// let c = classify(&profile);
/// assert_eq!(c.class(BranchId::new(0)), BiasClass::BiasedTaken);
/// assert_eq!(c.class(BranchId::new(1)), BiasClass::BiasedNotTaken);
/// assert_eq!(c.class(BranchId::new(2)), BiasClass::Mixed);
/// ```
pub fn classify(profile: &BranchProfile) -> Classification {
    classify_with(profile, 0.99, 0.01)
}

/// Classifies with custom thresholds.
///
/// # Panics
///
/// Panics unless `0 <= not_taken_threshold < taken_threshold <= 1`.
pub fn classify_with(
    profile: &BranchProfile,
    taken_threshold: f64,
    not_taken_threshold: f64,
) -> Classification {
    assert!(
        (0.0..=1.0).contains(&taken_threshold)
            && (0.0..=1.0).contains(&not_taken_threshold)
            && not_taken_threshold < taken_threshold,
        "thresholds must satisfy 0 <= not_taken < taken <= 1"
    );
    let classes = profile
        .iter()
        .map(|(_, s)| {
            let r = s.taken_rate();
            if r >= taken_threshold {
                BiasClass::BiasedTaken
            } else if r <= not_taken_threshold {
                BiasClass::BiasedNotTaken
            } else {
                BiasClass::Mixed
            }
        })
        .collect();
    Classification {
        classes,
        taken_threshold,
        not_taken_threshold,
    }
}

impl Classification {
    /// The class of a branch.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the classified profile.
    pub fn class(&self, id: BranchId) -> BiasClass {
        self.classes[id.index()]
    }

    /// Number of classified branches.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if no branches were classified.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Counts per class: `(biased_taken, biased_not_taken, mixed)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut t = 0;
        let mut n = 0;
        let mut m = 0;
        for c in &self.classes {
            match c {
                BiasClass::BiasedTaken => t += 1,
                BiasClass::BiasedNotTaken => n += 1,
                BiasClass::Mixed => m += 1,
            }
        }
        (t, n, m)
    }

    /// Returns `true` if the branch is in either biased class.
    pub fn is_biased(&self, id: BranchId) -> bool {
        self.class(id) != BiasClass::Mixed
    }

    /// Applies the §5.2 refinement to a conflict graph: edges between two
    /// branches of the *same* biased class are dropped ("we ignore the
    /// conflict even if it is above a threshold value").
    ///
    /// # Panics
    ///
    /// Panics if the graph's node count differs from the classification's.
    pub fn refine_graph(&self, graph: &ConflictGraph) -> ConflictGraph {
        assert_eq!(
            graph.node_count(),
            self.classes.len(),
            "graph/classification mismatch"
        );
        graph.without_edges(|a, b| {
            let ca = self.classes[a as usize];
            let cb = self.classes[b as usize];
            ca != BiasClass::Mixed && ca == cb
        })
    }

    /// The thresholds used: `(taken, not_taken)`.
    pub fn thresholds(&self) -> (f64, f64) {
        (self.taken_threshold, self.not_taken_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_graph::GraphBuilder;
    use bwsa_trace::TraceBuilder;

    /// Branch 0: always taken; 1: always taken; 2: never taken; 3: mixed.
    fn sample_classification() -> Classification {
        let mut t = TraceBuilder::new("c");
        let mut time = 0;
        for i in 0..300u64 {
            for (pc, taken) in [
                (0x100, true),
                (0x104, true),
                (0x108, false),
                (0x10c, i % 3 == 0),
            ] {
                time += 1;
                t.record(pc, taken, time);
            }
        }
        classify(&BranchProfile::from_trace(&t.finish()))
    }

    #[test]
    fn counts_by_class() {
        let c = sample_classification();
        assert_eq!(c.counts(), (2, 1, 1));
        assert_eq!(c.len(), 4);
        assert!(c.is_biased(BranchId::new(0)));
        assert!(!c.is_biased(BranchId::new(3)));
    }

    #[test]
    fn refine_drops_only_same_biased_class_edges() {
        let c = sample_classification();
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 500) // taken–taken: dropped
            .add_edge(0, 2, 500) // taken–not-taken: kept
            .add_edge(0, 3, 500) // taken–mixed: kept
            .add_edge(2, 3, 500); // not-taken–mixed: kept
        let refined = c.refine_graph(&b.build());
        assert!(!refined.has_edge(0, 1));
        assert!(refined.has_edge(0, 2));
        assert!(refined.has_edge(0, 3));
        assert!(refined.has_edge(2, 3));
    }

    #[test]
    fn boundary_rates_use_inclusive_thresholds() {
        // Exactly 99% taken classifies as biased taken.
        let mut t = TraceBuilder::new("b");
        for i in 0..100u64 {
            t.record(0x100, i != 0, i + 1);
        }
        let c = classify(&BranchProfile::from_trace(&t.finish()));
        assert_eq!(c.class(BranchId::new(0)), BiasClass::BiasedTaken);
    }

    #[test]
    fn custom_thresholds() {
        let mut t = TraceBuilder::new("b");
        for i in 0..10u64 {
            t.record(0x100, i < 9, i + 1); // 90% taken
        }
        let p = BranchProfile::from_trace(&t.finish());
        assert_eq!(classify(&p).class(BranchId::new(0)), BiasClass::Mixed);
        assert_eq!(
            classify_with(&p, 0.9, 0.1).class(BranchId::new(0)),
            BiasClass::BiasedTaken
        );
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn inverted_thresholds_rejected() {
        let p = BranchProfile::from_trace(&bwsa_trace::Trace::new("e"));
        classify_with(&p, 0.1, 0.9);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn refine_checks_node_count() {
        let c = sample_classification();
        c.refine_graph(&GraphBuilder::new(2).build());
    }
}
