//! Associative merges: cumulative multi-input profiles (§5.2) and the
//! shard-combine types behind the parallel analysis engine.
//!
//! Two independent merge problems live here:
//!
//! * **Across inputs** — a profile-based technique is only as good as its
//!   profile's coverage. The paper observes that profiles from different
//!   inputs exercise different program regions (`ss_a` vs `ss_b`) and
//!   proposes merging "the branch conflict graphs of several profiles from
//!   different input data ... until the resulting graph indicates that most
//!   part of the program has been exercised". Because each trace interns
//!   its own dense branch ids, merging goes through program counters:
//!   [`CumulativeProfile`] maintains a union [`BranchTable`] and remaps
//!   every per-trace interleave graph into it.
//!
//! * **Across shards of one trace** — [`crate::parallel`] splits a trace
//!   into time-contiguous shards and analyses them concurrently. The
//!   interleave engine is stateful (each detection compares against every
//!   branch's *latest* stamp), so shards cannot simply be analysed
//!   independently; instead [`ShardBoundary`] summarises the latest stamp
//!   each shard leaves per branch (an associative join), a cheap serial
//!   prefix-combine turns those summaries into an exact carry-in state for
//!   every shard, and [`ShardDelta`] runs the seeded engine over one shard
//!   and merges associatively into the whole-trace result. Both joins are
//!   pure integer max/sum operations, so the sharded run is bit-identical
//!   to the serial one — the property `crates/core/tests/parallel_prop.rs`
//!   checks exhaustively.

use crate::conflict::{ConflictAnalysis, ConflictConfig};
use crate::interleave::interleave_into;
use crate::interleave_counts;
use bwsa_graph::GraphBuilder;
use bwsa_trace::profile::BranchStats;
use bwsa_trace::{BranchTable, Trace};

/// An accumulating multi-input conflict profile.
///
/// # Example
///
/// ```
/// use bwsa_core::conflict::ConflictConfig;
/// use bwsa_core::merge::CumulativeProfile;
/// use bwsa_trace::TraceBuilder;
///
/// let mut input_a = TraceBuilder::new("a");
/// let mut input_b = TraceBuilder::new("b");
/// for i in 0..300u64 {
///     input_a.record(0x100 + (i % 2) * 4, true, i + 1); // exercises 0x100, 0x104
///     input_b.record(0x104 + (i % 2) * 4, true, i + 1); // exercises 0x104, 0x108
/// }
///
/// let mut cumulative = CumulativeProfile::new();
/// cumulative.add_trace(&input_a.finish());
/// cumulative.add_trace(&input_b.finish());
///
/// assert_eq!(cumulative.table().len(), 3, "union of both inputs' branches");
/// let analysis = cumulative.conflict_analysis(ConflictConfig::default());
/// assert_eq!(analysis.graph.edge_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CumulativeProfile {
    table: BranchTable,
    builder: GraphBuilder,
    traces_merged: usize,
    total_dynamic: u64,
}

impl CumulativeProfile {
    /// Creates an empty cumulative profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// The union pc ↔ id interner. Node `i` of [`CumulativeProfile::raw_graph`]
    /// is the branch with union id `i`.
    pub fn table(&self) -> &BranchTable {
        &self.table
    }

    /// Number of traces merged so far.
    pub fn traces_merged(&self) -> usize {
        self.traces_merged
    }

    /// Total dynamic branches across all merged traces.
    pub fn total_dynamic(&self) -> u64 {
        self.total_dynamic
    }

    /// Analyses one trace and folds its interleave counts into the
    /// cumulative graph, identifying branches across traces by pc.
    pub fn add_trace(&mut self, trace: &Trace) -> &mut Self {
        // Remap this trace's dense ids into the union id space.
        let remap: Vec<u32> = (0..trace.static_branch_count())
            .map(|i| {
                self.table
                    .intern(trace.table().pc_of(bwsa_trace::BranchId::new(i as u32)))
                    .as_u32()
            })
            .collect();
        self.builder.ensure_nodes(self.table.len() as u32);
        let local = interleave_counts(trace).build();
        for (a, b, w) in local.iter_edges() {
            self.builder
                .add_edge(remap[a as usize], remap[b as usize], w);
        }
        self.traces_merged += 1;
        self.total_dynamic += trace.len() as u64;
        self
    }

    /// The merged raw (unthresholded) conflict graph.
    pub fn raw_graph(&self) -> bwsa_graph::ConflictGraph {
        self.builder.build()
    }

    /// Thresholds the merged graph into a [`ConflictAnalysis`].
    pub fn conflict_analysis(&self, config: ConflictConfig) -> ConflictAnalysis {
        ConflictAnalysis::of_raw_graph(self.raw_graph(), config)
    }
}

/// The latest-stamp summary a time-contiguous shard leaves behind: for
/// each static branch, the timestamp of its last execution *within the
/// shard*, or `None` if the shard never executed it.
///
/// Joining boundaries left-to-right reproduces exactly the `last_stamp`
/// state the serial engine holds after consuming those shards in order,
/// because "latest stamp after A then B" is "B's stamp where B executed
/// the branch, else A's". The join is associative, which is what lets
/// shard summaries be computed concurrently and combined in a cheap
/// serial prefix pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardBoundary {
    stamps: Vec<Option<u64>>,
}

impl ShardBoundary {
    /// The empty summary (no branch executed) over `nodes` branches —
    /// the identity of [`ShardBoundary::join`].
    pub fn empty(nodes: usize) -> Self {
        ShardBoundary {
            stamps: vec![None; nodes],
        }
    }

    /// Summarises one shard's records, given as pre-interned
    /// `(branch id, timestamp)` pairs over a `nodes`-branch trace.
    pub fn of_records(nodes: usize, records: impl Iterator<Item = (u32, u64)>) -> Self {
        let mut b = Self::empty(nodes);
        for (node, t) in records {
            b.stamps[node as usize] = Some(t);
        }
        b
    }

    /// Folds a *later* shard's summary onto this one: wherever the later
    /// shard executed a branch, its stamp supersedes ours.
    pub fn join(&mut self, later: &ShardBoundary) -> &mut Self {
        if self.stamps.len() < later.stamps.len() {
            self.stamps.resize(later.stamps.len(), None);
        }
        for (mine, theirs) in self.stamps.iter_mut().zip(&later.stamps) {
            if theirs.is_some() {
                *mine = *theirs;
            }
        }
        self
    }

    /// The latest stamp per branch, indexed by branch id.
    pub fn stamps(&self) -> &[Option<u64>] {
        &self.stamps
    }
}

/// One shard's contribution to the whole-trace analysis: the interleave
/// edges its records detect (given the exact pre-shard engine state) plus
/// its per-branch execution statistics.
///
/// Merging deltas left-to-right is a pure integer sum per edge and per
/// stat counter, so the combined result is bit-identical to a serial pass
/// — u64 addition is associative and the first/last timestamps compose by
/// taking the earliest/latest populated entry.
#[derive(Debug, Clone)]
pub struct ShardDelta {
    pub(crate) builder: GraphBuilder,
    pub(crate) stats: Vec<BranchStats>,
    pub(crate) records: u64,
}

impl ShardDelta {
    /// The empty contribution over `nodes` branches — the identity of
    /// [`ShardDelta::merge`].
    pub fn empty(nodes: usize) -> Self {
        ShardDelta {
            builder: GraphBuilder::new(nodes as u32),
            stats: vec![BranchStats::default(); nodes],
            records: 0,
        }
    }

    /// Runs the Figure 1 engine over one shard's records, seeded with the
    /// latest-stamp state `carry` accumulated by every earlier shard.
    ///
    /// `records` yields pre-interned `(branch id, timestamp, taken)`
    /// triples in trace order. Because the carry-in is exactly the state
    /// the serial engine would hold at the shard's first record, the edges
    /// detected here are exactly the edges the serial pass detects over
    /// the same record range.
    pub fn of_shard(
        nodes: usize,
        carry: &ShardBoundary,
        records: impl Iterator<Item = (u32, u64, bool)>,
    ) -> Self {
        let mut delta = Self::empty(nodes);
        let mut last_stamp = carry.stamps.clone();
        last_stamp.resize(nodes, None);
        let stats = &mut delta.stats;
        let counted = &mut delta.records;
        interleave_into(
            &mut delta.builder,
            &mut last_stamp,
            records.map(|(node, t, taken)| {
                let s = &mut stats[node as usize];
                if s.executions == 0 {
                    s.first_time = t.into();
                }
                s.executions += 1;
                s.taken += taken as u64;
                s.last_time = t.into();
                *counted += 1;
                (node, t)
            }),
        );
        delta
    }

    /// Folds a *later* shard's contribution onto this one.
    pub fn merge(&mut self, later: &ShardDelta) -> &mut Self {
        self.builder.merge(&later.builder);
        if self.stats.len() < later.stats.len() {
            self.stats.resize(later.stats.len(), BranchStats::default());
        }
        for (mine, theirs) in self.stats.iter_mut().zip(&later.stats) {
            if theirs.executions == 0 {
                continue;
            }
            if mine.executions == 0 {
                *mine = *theirs;
            } else {
                mine.executions += theirs.executions;
                mine.taken += theirs.taken;
                mine.last_time = theirs.last_time;
            }
        }
        self.records += later.records;
        self
    }

    /// Dynamic records this delta accounts for.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Compiles the accumulated interleave edges into an immutable graph.
    pub fn into_graph(self) -> bwsa_graph::ConflictGraph {
        self.builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    fn pair_trace(pc_a: u64, pc_b: u64, rounds: u64) -> Trace {
        let mut t = TraceBuilder::new("pair");
        for i in 0..rounds * 2 {
            t.record(if i % 2 == 0 { pc_a } else { pc_b }, true, i + 1);
        }
        t.finish()
    }

    #[test]
    fn merging_same_trace_doubles_weights() {
        let t = pair_trace(0x100, 0x104, 200);
        let single = interleave_counts(&t).build();
        let mut cp = CumulativeProfile::new();
        cp.add_trace(&t).add_trace(&t);
        let merged = cp.raw_graph();
        assert_eq!(
            merged.edge_weight(0, 1),
            single.edge_weight(0, 1).map(|w| w * 2)
        );
        assert_eq!(cp.traces_merged(), 2);
        assert_eq!(cp.total_dynamic(), 2 * t.len() as u64);
    }

    #[test]
    fn disjoint_inputs_union_their_branches() {
        let a = pair_trace(0x100, 0x104, 200);
        let b = pair_trace(0x200, 0x204, 200);
        let mut cp = CumulativeProfile::new();
        cp.add_trace(&a).add_trace(&b);
        assert_eq!(cp.table().len(), 4);
        let g = cp.raw_graph();
        assert_eq!(g.edge_count(), 2);
        // No cross-input edges: the graphs were merged, not concatenated.
        let a0 = cp.table().id_of(0x100.into()).unwrap().as_u32();
        let b0 = cp.table().id_of(0x200.into()).unwrap().as_u32();
        assert!(!g.has_edge(a0, b0));
    }

    #[test]
    fn shared_branches_are_identified_by_pc() {
        // Both inputs exercise 0x104; it must be a single union node.
        let a = pair_trace(0x100, 0x104, 200);
        let b = pair_trace(0x104, 0x108, 200);
        let mut cp = CumulativeProfile::new();
        cp.add_trace(&a).add_trace(&b);
        assert_eq!(cp.table().len(), 3);
        let shared = cp.table().id_of(0x104.into()).unwrap().as_u32();
        let g = cp.raw_graph();
        assert_eq!(g.degree(shared), 2, "edges to both inputs' partners");
    }

    #[test]
    fn thresholding_applies_to_merged_weights() {
        // Each input alone contributes ~79 detections per direction — under
        // a threshold of 150 — but the merge crosses it.
        let t = pair_trace(0x100, 0x104, 40);
        let single = ConflictAnalysis::of_raw_graph(
            interleave_counts(&t).build(),
            ConflictConfig::with_threshold(150).unwrap(),
        );
        assert_eq!(single.graph.edge_count(), 0);
        let mut cp = CumulativeProfile::new();
        cp.add_trace(&t).add_trace(&t);
        let merged = cp.conflict_analysis(ConflictConfig::with_threshold(150).unwrap());
        assert_eq!(merged.graph.edge_count(), 1);
    }

    #[test]
    fn empty_profile_yields_empty_graph() {
        let cp = CumulativeProfile::new();
        assert_eq!(cp.raw_graph().node_count(), 0);
        assert_eq!(cp.traces_merged(), 0);
    }

    fn shard_inputs(t: &Trace) -> Vec<(u32, u64, bool)> {
        t.indexed_records()
            .map(|(id, r)| (id.as_u32(), r.time.get(), r.is_taken()))
            .collect()
    }

    #[test]
    fn boundary_join_matches_sequential_scan() {
        let t = pair_trace(0x100, 0x104, 50);
        let all = shard_inputs(&t);
        let n = t.static_branch_count();
        for split in [0, 1, 37, all.len()] {
            let (lo, hi) = all.split_at(split);
            let mut joined = ShardBoundary::of_records(n, lo.iter().map(|&(b, t, _)| (b, t)));
            joined.join(&ShardBoundary::of_records(
                n,
                hi.iter().map(|&(b, t, _)| (b, t)),
            ));
            let whole = ShardBoundary::of_records(n, all.iter().map(|&(b, t, _)| (b, t)));
            assert_eq!(joined, whole, "split {split}");
        }
    }

    #[test]
    fn seeded_shard_deltas_reassemble_the_serial_graph() {
        let t = pair_trace(0x100, 0x104, 80);
        let all = shard_inputs(&t);
        let n = t.static_branch_count();
        let serial = interleave_counts(&t).build();
        for split in [0, 1, 79, all.len()] {
            let (lo, hi) = all.split_at(split);
            let mut acc = ShardDelta::of_shard(n, &ShardBoundary::empty(n), lo.iter().copied());
            let carry = ShardBoundary::of_records(n, lo.iter().map(|&(b, t, _)| (b, t)));
            acc.merge(&ShardDelta::of_shard(n, &carry, hi.iter().copied()));
            assert_eq!(acc.builder.build(), serial, "split {split}");
            assert_eq!(acc.record_count(), t.len() as u64);
        }
    }

    #[test]
    fn delta_merge_accumulates_stats_like_a_serial_profile() {
        let t = pair_trace(0x100, 0x104, 30);
        let all = shard_inputs(&t);
        let n = t.static_branch_count();
        let expected = bwsa_trace::profile::BranchProfile::from_trace(&t);
        let (lo, hi) = all.split_at(17);
        let mut acc = ShardDelta::of_shard(n, &ShardBoundary::empty(n), lo.iter().copied());
        let carry = ShardBoundary::of_records(n, lo.iter().map(|&(b, t, _)| (b, t)));
        acc.merge(&ShardDelta::of_shard(n, &carry, hi.iter().copied()));
        for id in 0..n as u32 {
            let got = acc.stats[id as usize];
            let want = *expected.stats(bwsa_trace::BranchId::new(id));
            assert_eq!(got, want, "branch {id}");
        }
    }

    #[test]
    fn empty_shard_is_the_merge_identity() {
        let t = pair_trace(0x100, 0x104, 10);
        let n = t.static_branch_count();
        let base = ShardDelta::of_shard(n, &ShardBoundary::empty(n), shard_inputs(&t).into_iter());
        let mut with_identity = base.clone();
        with_identity.merge(&ShardDelta::empty(n));
        assert_eq!(with_identity.builder.build(), base.builder.build());
        assert_eq!(with_identity.stats, base.stats);
        assert_eq!(with_identity.records, base.records);
    }
}
