//! Cumulative profiles: merging conflict graphs from several inputs
//! (§5.2).
//!
//! A profile-based technique is only as good as its profile's coverage.
//! The paper observes that profiles from different inputs exercise
//! different program regions (`ss_a` vs `ss_b`) and proposes merging "the
//! branch conflict graphs of several profiles from different input data
//! ... until the resulting graph indicates that most part of the program
//! has been exercised".
//!
//! Because each trace interns its own dense branch ids, merging goes
//! through program counters: [`CumulativeProfile`] maintains a union
//! [`BranchTable`] and remaps every per-trace interleave graph into it.

use crate::conflict::{ConflictAnalysis, ConflictConfig};
use crate::interleave_counts;
use bwsa_graph::GraphBuilder;
use bwsa_trace::{BranchTable, Trace};

/// An accumulating multi-input conflict profile.
///
/// # Example
///
/// ```
/// use bwsa_core::conflict::ConflictConfig;
/// use bwsa_core::merge::CumulativeProfile;
/// use bwsa_trace::TraceBuilder;
///
/// let mut input_a = TraceBuilder::new("a");
/// let mut input_b = TraceBuilder::new("b");
/// for i in 0..300u64 {
///     input_a.record(0x100 + (i % 2) * 4, true, i + 1); // exercises 0x100, 0x104
///     input_b.record(0x104 + (i % 2) * 4, true, i + 1); // exercises 0x104, 0x108
/// }
///
/// let mut cumulative = CumulativeProfile::new();
/// cumulative.add_trace(&input_a.finish());
/// cumulative.add_trace(&input_b.finish());
///
/// assert_eq!(cumulative.table().len(), 3, "union of both inputs' branches");
/// let analysis = cumulative.conflict_analysis(ConflictConfig::default());
/// assert_eq!(analysis.graph.edge_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CumulativeProfile {
    table: BranchTable,
    builder: GraphBuilder,
    traces_merged: usize,
    total_dynamic: u64,
}

impl CumulativeProfile {
    /// Creates an empty cumulative profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// The union pc ↔ id interner. Node `i` of [`CumulativeProfile::raw_graph`]
    /// is the branch with union id `i`.
    pub fn table(&self) -> &BranchTable {
        &self.table
    }

    /// Number of traces merged so far.
    pub fn traces_merged(&self) -> usize {
        self.traces_merged
    }

    /// Total dynamic branches across all merged traces.
    pub fn total_dynamic(&self) -> u64 {
        self.total_dynamic
    }

    /// Analyses one trace and folds its interleave counts into the
    /// cumulative graph, identifying branches across traces by pc.
    pub fn add_trace(&mut self, trace: &Trace) -> &mut Self {
        // Remap this trace's dense ids into the union id space.
        let remap: Vec<u32> = (0..trace.static_branch_count())
            .map(|i| {
                self.table
                    .intern(trace.table().pc_of(bwsa_trace::BranchId::new(i as u32)))
                    .as_u32()
            })
            .collect();
        self.builder.ensure_nodes(self.table.len() as u32);
        let local = interleave_counts(trace).build();
        for (a, b, w) in local.iter_edges() {
            self.builder
                .add_edge(remap[a as usize], remap[b as usize], w);
        }
        self.traces_merged += 1;
        self.total_dynamic += trace.len() as u64;
        self
    }

    /// The merged raw (unthresholded) conflict graph.
    pub fn raw_graph(&self) -> bwsa_graph::ConflictGraph {
        self.builder.build()
    }

    /// Thresholds the merged graph into a [`ConflictAnalysis`].
    pub fn conflict_analysis(&self, config: ConflictConfig) -> ConflictAnalysis {
        ConflictAnalysis::of_raw_graph(self.raw_graph(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    fn pair_trace(pc_a: u64, pc_b: u64, rounds: u64) -> Trace {
        let mut t = TraceBuilder::new("pair");
        for i in 0..rounds * 2 {
            t.record(if i % 2 == 0 { pc_a } else { pc_b }, true, i + 1);
        }
        t.finish()
    }

    #[test]
    fn merging_same_trace_doubles_weights() {
        let t = pair_trace(0x100, 0x104, 200);
        let single = interleave_counts(&t).build();
        let mut cp = CumulativeProfile::new();
        cp.add_trace(&t).add_trace(&t);
        let merged = cp.raw_graph();
        assert_eq!(
            merged.edge_weight(0, 1),
            single.edge_weight(0, 1).map(|w| w * 2)
        );
        assert_eq!(cp.traces_merged(), 2);
        assert_eq!(cp.total_dynamic(), 2 * t.len() as u64);
    }

    #[test]
    fn disjoint_inputs_union_their_branches() {
        let a = pair_trace(0x100, 0x104, 200);
        let b = pair_trace(0x200, 0x204, 200);
        let mut cp = CumulativeProfile::new();
        cp.add_trace(&a).add_trace(&b);
        assert_eq!(cp.table().len(), 4);
        let g = cp.raw_graph();
        assert_eq!(g.edge_count(), 2);
        // No cross-input edges: the graphs were merged, not concatenated.
        let a0 = cp.table().id_of(0x100.into()).unwrap().as_u32();
        let b0 = cp.table().id_of(0x200.into()).unwrap().as_u32();
        assert!(!g.has_edge(a0, b0));
    }

    #[test]
    fn shared_branches_are_identified_by_pc() {
        // Both inputs exercise 0x104; it must be a single union node.
        let a = pair_trace(0x100, 0x104, 200);
        let b = pair_trace(0x104, 0x108, 200);
        let mut cp = CumulativeProfile::new();
        cp.add_trace(&a).add_trace(&b);
        assert_eq!(cp.table().len(), 3);
        let shared = cp.table().id_of(0x104.into()).unwrap().as_u32();
        let g = cp.raw_graph();
        assert_eq!(g.degree(shared), 2, "edges to both inputs' partners");
    }

    #[test]
    fn thresholding_applies_to_merged_weights() {
        // Each input alone contributes ~79 detections per direction — under
        // a threshold of 150 — but the merge crosses it.
        let t = pair_trace(0x100, 0x104, 40);
        let single = ConflictAnalysis::of_raw_graph(
            interleave_counts(&t).build(),
            ConflictConfig::with_threshold(150).unwrap(),
        );
        assert_eq!(single.graph.edge_count(), 0);
        let mut cp = CumulativeProfile::new();
        cp.add_trace(&t).add_trace(&t);
        let merged = cp.conflict_analysis(ConflictConfig::with_threshold(150).unwrap());
        assert_eq!(merged.graph.edge_count(), 1);
    }

    #[test]
    fn empty_profile_yields_empty_graph() {
        let cp = CumulativeProfile::new();
        assert_eq!(cp.raw_graph().node_count(), 0);
        assert_eq!(cp.traces_merged(), 0);
    }
}
