//! Step 2: the branch conflict graph and its threshold refinement
//! (§4.1–4.2).

use crate::{interleave_counts, CoreError};
use bwsa_graph::ConflictGraph;
use bwsa_trace::Trace;
use serde::{Deserialize, Serialize};

/// Configuration of conflict-graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictConfig {
    /// Minimum interleave count for an edge to survive (§4.2). The paper
    /// uses 100 and reports that 500 or 1000 "show no significant
    /// difference"; the `ablation_threshold` bench binary verifies that.
    pub threshold: u64,
}

impl Default for ConflictConfig {
    fn default() -> Self {
        ConflictConfig { threshold: 100 }
    }
}

impl ConflictConfig {
    /// A config with a custom threshold.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `threshold` is zero (a
    /// zero threshold keeps every accidental one-off conflict and is
    /// never what the analysis wants; use 1 to keep everything).
    pub fn with_threshold(threshold: u64) -> Result<Self, CoreError> {
        if threshold == 0 {
            return Err(CoreError::config("threshold must be at least 1"));
        }
        Ok(ConflictConfig { threshold })
    }
}

/// The conflict graph of a trace, before and after thresholding.
///
/// Node `i` of either graph is the branch with
/// [`bwsa_trace::BranchId::index`] `i` in the analysed trace.
///
/// # Example
///
/// ```
/// use bwsa_core::conflict::{ConflictAnalysis, ConflictConfig};
/// use bwsa_trace::TraceBuilder;
///
/// let mut t = TraceBuilder::new("pair");
/// for i in 0..500u64 {
///     t.record(0x40 + (i % 2) * 4, true, i + 1);
/// }
/// let analysis = ConflictAnalysis::of_trace(&t.finish(), ConflictConfig::default());
/// assert_eq!(analysis.graph.edge_count(), 1);
/// assert!(analysis.graph.edge_weight(0, 1).unwrap() >= 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConflictAnalysis {
    /// The thresholded conflict graph used by all downstream analyses.
    pub graph: ConflictGraph,
    /// Edge count before thresholding (for reporting graph reduction).
    pub raw_edge_count: usize,
    /// Total interleave weight before thresholding.
    pub raw_total_weight: u64,
    /// The configuration used.
    pub config: ConflictConfig,
}

impl ConflictAnalysis {
    /// Runs interleaving analysis (step 1) and thresholding (step 2) on a
    /// trace.
    pub fn of_trace(trace: &Trace, config: ConflictConfig) -> Self {
        let raw = interleave_counts(trace).build();
        Self::of_raw_graph(raw, config)
    }

    /// Thresholds an already-built raw interleave graph (used by the
    /// cumulative-profile path, where the raw graph comes from a merge).
    pub fn of_raw_graph(raw: ConflictGraph, config: ConflictConfig) -> Self {
        let raw_edge_count = raw.edge_count();
        let raw_total_weight = raw.total_weight();
        ConflictAnalysis {
            graph: raw.pruned(config.threshold),
            raw_edge_count,
            raw_total_weight,
            config,
        }
    }

    /// Fraction of raw edges eliminated by the threshold, in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.raw_edge_count == 0 {
            0.0
        } else {
            1.0 - self.graph.edge_count() as f64 / self.raw_edge_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    /// Branches 0/1 interleave ~300 times; branch 2 brushes past once.
    fn trace_with_weak_edge() -> bwsa_trace::Trace {
        let mut t = TraceBuilder::new("weak");
        let mut time = 0;
        for _ in 0..300 {
            time += 1;
            t.record(0xa, true, time);
            time += 1;
            t.record(0xb, true, time);
        }
        time += 1;
        t.record(0xc, true, time);
        time += 1;
        t.record(0xa, true, time);
        time += 1;
        t.record(0xc, true, time);
        t.finish()
    }

    #[test]
    fn threshold_removes_incidental_conflicts() {
        let trace = trace_with_weak_edge();
        let a = ConflictAnalysis::of_trace(&trace, ConflictConfig::default());
        assert_eq!(a.graph.edge_count(), 1, "only the hot pair survives");
        assert!(a.raw_edge_count > 1);
        assert!(a.reduction() > 0.0);
    }

    #[test]
    fn threshold_one_keeps_everything() {
        let trace = trace_with_weak_edge();
        let cfg = ConflictConfig::with_threshold(1).unwrap();
        let a = ConflictAnalysis::of_trace(&trace, cfg);
        assert_eq!(a.graph.edge_count(), a.raw_edge_count);
        assert_eq!(a.reduction(), 0.0);
    }

    #[test]
    fn zero_threshold_is_rejected() {
        assert!(ConflictConfig::with_threshold(0).is_err());
    }

    #[test]
    fn default_threshold_is_the_papers() {
        assert_eq!(ConflictConfig::default().threshold, 100);
    }

    #[test]
    fn raw_totals_are_preserved() {
        let trace = trace_with_weak_edge();
        let a = ConflictAnalysis::of_trace(&trace, ConflictConfig::default());
        let raw = crate::interleave_counts(&trace).build();
        assert_eq!(a.raw_total_weight, raw.total_weight());
    }
}
