//! **Branch working set analysis and branch allocation** — the primary
//! contribution of Kim & Tyson, *Analyzing the Working Set
//! Characteristics of Branch Execution* (MICRO 1998).
//!
//! The pipeline has the paper's three steps (§4.1) plus the allocation
//! technique built on them (§5):
//!
//! 1. [`interleave`] — timestamp analysis: when a branch re-executes,
//!    every branch whose latest execution falls after its previous
//!    instance has *interleaved* with it; each detection bumps the pair's
//!    interleave counter.
//! 2. [`conflict`] — the counters become a weighted **branch conflict
//!    graph**, thresholded (default 100) to discard incidental conflicts.
//! 3. [`working_set`] — working sets are completely interconnected
//!    subgraphs of the conflict graph; their sizes are Table 2.
//!
//! On top of that:
//!
//! * [`classify`] — branch classification (Chang et al.) marks ≥99%- and
//!   ≤1%-taken branches; same-class conflicts are ignored (§5.2).
//! * [`allocation`] — **branch allocation**: graph-coloring assignment of
//!   branches to BHT entries, the required-table-size search of Tables
//!   3–4, and construction of the [`bwsa_predictor::AllocatedIndex`]
//!   consumed by the PAg simulator for Figures 3–4.
//! * [`merge`] — cumulative multi-input profiles (§5.2) and the
//!   associative shard-combine types behind parallel analysis.
//! * [`parallel`] — sharded multi-threaded execution of the pipeline,
//!   bit-identical to the serial pass.
//! * [`columnar`] — `BWSS3` ingest: footer-driven shard planning,
//!   parallel block-range decode, and block-wise streaming into the
//!   flat engines.
//! * [`phases`] — working sets over time (transition detection).
//! * [`pipeline`] — the pipeline engine and its products.
//! * [`session`] — the [`Session`] entry point: trace + configuration +
//!   observer behind one builder, with cached results, unified
//!   [`Error`] handling, and [`bwsa_obs::RunReport`] emission.
//!
//! # Example
//!
//! ```
//! use bwsa_core::Session;
//! use bwsa_trace::TraceBuilder;
//!
//! // Two branches ping-ponging: one working set of size 2.
//! let mut b = TraceBuilder::new("pingpong");
//! for i in 0..600u64 {
//!     b.record(0x400 + (i % 2) * 4, i % 4 < 2, i + 1);
//! }
//! let trace = b.finish();
//! let session = Session::new(&trace);
//! let analysis = session.run().unwrap();
//! assert_eq!(analysis.working_sets.report.total_sets, 1);
//! assert_eq!(analysis.working_sets.report.max_size, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod allocation;
pub mod checkpoint;
pub mod classify;
pub mod columnar;
pub mod conflict;
mod error;
pub mod interleave;
pub mod merge;
pub mod parallel;
pub mod phases;
pub mod pipeline;
mod recency;
pub mod report;
pub mod session;
pub mod supervise;
pub mod window;
pub mod working_set;

/// Failpoint sites this crate hosts (see [`bwsa_resilience::failpoint`]).
pub mod failpoints {
    /// Fires at the start of the serial profile stage.
    pub const PROFILE: &str = "core.profile";
    /// Fires at the start of the serial interleave stage.
    pub const INTERLEAVE: &str = "core.interleave";
    /// Fires at the start of the conflict-graph pruning stage.
    pub const CONFLICT_PRUNE: &str = "core.conflict_prune";
    /// Fires at the start of the working-set extraction stage.
    pub const WORKING_SETS: &str = "core.working_sets";
    /// Fires at the start of the branch-classification stage.
    pub const CLASSIFY: &str = "core.classify";
    /// Fires inside every shard of the parallel summarise pass.
    pub const SHARD_SUMMARIZE: &str = "core.shard_summarize";
    /// Fires inside every shard of the parallel detect pass.
    pub const SHARD_DETECT: &str = "core.shard_detect";
    /// Fires before the serial shard-delta merge fold.
    pub const SHARD_MERGE: &str = "core.shard_merge";
    /// Fires when a [`crate::StreamingAnalysis`] checkpoint is saved.
    pub const CHECKPOINT_SAVE: &str = "core.checkpoint_save";
    /// Fires when a [`crate::StreamingAnalysis`] checkpoint is restored.
    pub const CHECKPOINT_RESTORE: &str = "core.checkpoint_restore";
    /// Fires when a [`crate::WindowedAnalysis`] window flushes.
    pub const WINDOW_FLUSH: &str = "core.window_flush";
    /// Fires before a flushed window merges into the cumulative state.
    pub const WINDOW_MERGE: &str = "core.window_merge";
    /// Fires before the incremental re-coloring of the cumulative graph.
    pub const RECOLOR: &str = "core.recolor";
    /// Every site in this crate, for chaos-sweep enumeration.
    pub const SITES: &[&str] = &[
        PROFILE,
        INTERLEAVE,
        CONFLICT_PRUNE,
        WORKING_SETS,
        CLASSIFY,
        SHARD_SUMMARIZE,
        SHARD_DETECT,
        SHARD_MERGE,
        CHECKPOINT_SAVE,
        CHECKPOINT_RESTORE,
        WINDOW_FLUSH,
        WINDOW_MERGE,
        RECOLOR,
    ];
}

pub use allocation::{allocate, required_bht_size, Allocation, AllocationConfig};
pub use checkpoint::StreamingAnalysis;
pub use classify::{classify, BiasClass, Classification};
pub use conflict::{ConflictAnalysis, ConflictConfig};
pub use error::{CoreError, Error};
pub use interleave::{interleave_counts, interleave_counts_naive, StreamingInterleave};
pub use parallel::{
    analyze_parallel, analyze_parallel_observed, analyze_parallel_supervised, parallel_map,
    ParallelConfig, ShardRetryPolicy,
};
pub use pipeline::{Analysis, AnalysisPipeline};
pub use session::{Classified, Execution, Session};
pub use supervise::{Downgrade, ResilienceSummary, SupervisorConfig};
pub use window::{
    RecolorStats, WindowConfig, WindowSummary, WindowUnit, WindowedAnalysis, WindowedResult,
};
pub use working_set::{working_sets, WorkingSetDefinition, WorkingSetReport, WorkingSets};

/// The blessed public surface, for one-line imports.
///
/// Everything a typical consumer needs: the [`Session`] builder and its
/// configuration values, the windowing and supervision knobs, the
/// unified [`Error`], and the observability handles ([`Obs`],
/// [`RunReport`](bwsa_obs::RunReport)) sessions report through. The
/// corpus layer's `Corpus` lives one crate up — `bwsa::prelude` in the
/// facade crate re-exports this module plus the corpus types.
///
/// Anything *not* re-exported here (module internals like
/// `interleave`, `merge`, `recency`, the checkpoint codec, …) is
/// considered an internal surface: public for tooling and tests, but
/// free to churn between minor versions. See DESIGN.md §14.
///
/// ```
/// use bwsa_core::prelude::*;
/// use bwsa_trace::TraceBuilder;
///
/// let mut t = TraceBuilder::new("demo");
/// for i in 0..200u64 {
///     t.record(0x100 + (i % 3) * 4, i % 2 == 0, i + 1);
/// }
/// let trace = t.finish();
/// let session = Session::new(&trace);
/// assert!(session.run().is_ok());
/// ```
pub mod prelude {
    pub use crate::error::{CoreError, Error};
    pub use crate::pipeline::{Analysis, AnalysisPipeline};
    pub use crate::session::{Classified, Execution, Session};
    pub use crate::supervise::{ResilienceSummary, SupervisorConfig};
    pub use crate::window::{WindowConfig, WindowSummary, WindowedResult};
    pub use crate::{allocation::AllocationConfig, conflict::ConflictConfig, ParallelConfig};
    pub use bwsa_obs::{Obs, RunReport};
}
