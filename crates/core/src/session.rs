//! The unified **Session** entry point: one builder that owns the
//! association of trace, pipeline configuration, execution strategy, and
//! observer, and exposes every analysis product behind a single
//! `Result<_, Error>` surface.
//!
//! A [`Session`] replaces the 0.4-era pairs of pipeline methods
//! (deleted in 0.9.0) with configuration values: [`Execution`] picks
//! serial or sharded parallel
//! execution and [`Classified`] picks plain §5.1 or classified §5.2
//! allocation. The analysis is computed once on first use and cached for
//! the session's lifetime, so interleaved `allocate`/`required_bht_size`
//! calls never re-run the pipeline.
//!
//! ```
//! use bwsa_core::{Classified, Execution, Session};
//! use bwsa_obs::Obs;
//! use bwsa_trace::TraceBuilder;
//!
//! let mut t = TraceBuilder::new("demo");
//! for i in 0..1000u64 {
//!     t.record(0x100 + (i % 3) * 4, i % 2 == 0, i + 1);
//! }
//! let trace = t.finish();
//!
//! let session = Session::new(&trace)
//!     .with_execution(Execution::Serial)
//!     .with_observer(Obs::recording());
//! let analysis = session.run().unwrap();
//! assert_eq!(analysis.working_sets.report.total_sets, 1);
//!
//! // Allocation reuses the cached analysis; no second pipeline run.
//! let alloc = session.allocate(Classified(false), 4).unwrap();
//! assert_eq!(alloc.table_size(), 4);
//!
//! let metrics = session.metrics().unwrap();
//! assert!(metrics.stage("interleave").is_some());
//! ```

use crate::allocation::{Allocation, RequiredSize};
use crate::error::Error;
use crate::parallel::{analyze_parallel_observed, ParallelConfig};
use crate::pipeline::{Analysis, AnalysisPipeline};
use crate::supervise::{self, ResilienceSummary, SupervisorConfig};
use crate::window::{WindowConfig, WindowedAnalysis, WindowedResult};
use bwsa_obs::json::Json;
use bwsa_obs::report::{DowngradeReport, ResilienceReport, WindowsReport};
use bwsa_obs::{Metrics, Obs, RunReport};
use bwsa_trace::Trace;
use std::sync::OnceLock;

/// Whether allocation uses branch classification (§5.2) or not (§5.1).
///
/// A transparent wrapper rather than a bare `bool` so call sites read as
/// `session.allocate(Classified(true), 1024)` instead of an anonymous
/// flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Classified(pub bool);

/// How a session executes the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Execution {
    /// Single-threaded, the reference implementation.
    #[default]
    Serial,
    /// Sharded across worker threads; bit-identical to serial for every
    /// jobs/shards choice (see [`crate::parallel`]).
    Parallel(ParallelConfig),
}

/// A configured analysis run over one trace.
///
/// Built with [`Session::new`] plus the `with_*` setters; see the
/// [module docs](self) for the full picture. The session borrows the
/// trace, so it can be created cheaply for an already-loaded trace and
/// dropped without giving it up.
#[derive(Debug)]
pub struct Session<'t> {
    trace: &'t Trace,
    pipeline: AnalysisPipeline,
    execution: Execution,
    supervisor: Option<SupervisorConfig>,
    windowing: Option<WindowConfig>,
    obs: Obs,
    analysis: OnceLock<Analysis>,
    resilience: OnceLock<ResilienceSummary>,
    windowed: OnceLock<WindowedResult>,
}

impl<'t> Session<'t> {
    /// A session over `trace` with the paper's default configuration,
    /// serial execution, and no observer.
    pub fn new(trace: &'t Trace) -> Self {
        Session {
            trace,
            pipeline: AnalysisPipeline::default(),
            execution: Execution::Serial,
            supervisor: None,
            windowing: None,
            obs: Obs::noop(),
            analysis: OnceLock::new(),
            resilience: OnceLock::new(),
            windowed: OnceLock::new(),
        }
    }

    /// Replaces the pipeline configuration.
    pub fn with_pipeline(mut self, pipeline: AnalysisPipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Picks serial or parallel execution.
    pub fn with_execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Runs the pipeline under supervision: worker isolation, retries
    /// with backoff, cooperative deadlines, a soft memory budget, and
    /// graceful degradation down the ladder described in
    /// [`crate::supervise`]. Every attempt, retry, and downgrade is
    /// recorded in [`Session::resilience_summary`] and in run reports.
    pub fn with_supervisor(mut self, config: SupervisorConfig) -> Self {
        self.supervisor = Some(config);
        self
    }

    /// Enables online windowed analysis: [`Session::windowed`] replays
    /// the trace through a [`WindowedAnalysis`] at `config`'s reset
    /// interval, emitting per-window summaries whose fold is bit-identical
    /// to [`Session::run`]'s whole-trace answer.
    pub fn with_windowing(mut self, config: WindowConfig) -> Self {
        self.windowing = Some(config);
        self
    }

    /// Attaches an observer; pass [`Obs::recording`] to collect stage
    /// timings and counters, retrievable via [`Session::metrics`].
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The trace this session analyses.
    pub fn trace(&self) -> &'t Trace {
        self.trace
    }

    /// The pipeline configuration in effect.
    pub fn pipeline(&self) -> &AnalysisPipeline {
        &self.pipeline
    }

    /// The execution strategy in effect.
    pub fn execution(&self) -> Execution {
        self.execution
    }

    /// The observer attached to this session.
    pub fn observer(&self) -> &Obs {
        &self.obs
    }

    /// Runs the pipeline (validating the configuration first), or returns
    /// the cached result of an earlier call.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Core`] when the configuration fails
    /// [`AnalysisPipeline::validate`]; a supervised session additionally
    /// returns [`Error::Resilience`] when the whole degradation ladder
    /// fails.
    pub fn run(&self) -> Result<&Analysis, Error> {
        if let Some(analysis) = self.analysis.get() {
            return Ok(analysis);
        }
        self.pipeline.validate()?;
        let analysis = match &self.supervisor {
            Some(config) => {
                let (result, summary) = supervise::run_supervised(
                    &self.pipeline,
                    self.trace,
                    &self.execution,
                    config,
                    &self.obs,
                );
                let _ = self.resilience.set(summary);
                result?
            }
            None => match &self.execution {
                Execution::Serial => self.pipeline.run_observed(self.trace, &self.obs),
                Execution::Parallel(config) => {
                    analyze_parallel_observed(&self.pipeline, self.trace, config, &self.obs)
                }
            },
        };
        // A concurrent caller may have won the race; either value is
        // identical, so return whichever landed.
        Ok(self.analysis.get_or_init(|| analysis))
    }

    /// Runs the online windowed analysis configured by
    /// [`Session::with_windowing`], or returns the cached result of an
    /// earlier call. The windowed path is its own serial replay of the
    /// trace — it does not consume or populate [`Session::run`]'s cache —
    /// but its folded [`WindowedResult::analysis`] is bit-identical to
    /// what [`Session::run`] computes.
    ///
    /// # Errors
    ///
    /// [`Error::Core`] when no windowing is configured or the pipeline
    /// configuration fails [`AnalysisPipeline::validate`].
    pub fn windowed(&self) -> Result<&WindowedResult, Error> {
        if let Some(result) = self.windowed.get() {
            return Ok(result);
        }
        let config = self.windowing.ok_or_else(|| {
            Error::from(crate::CoreError::config(
                "windowed() needs with_windowing(WindowConfig)",
            ))
        })?;
        self.pipeline.validate()?;
        let mut engine =
            WindowedAnalysis::new(config, self.pipeline).with_observer(self.obs.clone());
        {
            let _span = self.obs.span("windowed_analysis");
            for (id, record) in self.trace.indexed_records() {
                engine.push(id.as_u32(), record.time.get(), record.is_taken());
            }
        }
        let result = engine.finish();
        Ok(self.windowed.get_or_init(|| result))
    }

    /// What a supervised run survived — attempts, retries, downgrades,
    /// faults. `None` before [`Session::run`] or without
    /// [`Session::with_supervisor`]. Populated even when the run failed,
    /// so error paths can still report what was attempted.
    pub fn resilience_summary(&self) -> Option<&ResilienceSummary> {
        self.resilience.get()
    }

    /// Branch allocation into a `table_size`-entry BHT, running the
    /// pipeline first if needed.
    ///
    /// # Errors
    ///
    /// Configuration errors from [`Session::run`], plus
    /// [`Error::Core`] for an unusable `table_size` (zero, or below 3
    /// with classification).
    pub fn allocate(&self, classified: Classified, table_size: usize) -> Result<Allocation, Error> {
        let allocation_cfg = self.pipeline.allocation;
        let analysis = self.run()?;
        let _span = self.obs.span("allocate");
        let result = analysis.allocation(classified, table_size, &allocation_cfg)?;
        self.obs.add("core.allocations", 1);
        Ok(result)
    }

    /// The minimum BHT size for allocation to beat a conventional
    /// `baseline`-entry table (Tables 3–4), running the pipeline first if
    /// needed.
    ///
    /// # Errors
    ///
    /// Configuration errors from [`Session::run`], plus [`Error::Core`]
    /// for a zero `baseline`.
    pub fn required_bht_size(
        &self,
        classified: Classified,
        baseline: usize,
    ) -> Result<RequiredSize, Error> {
        let allocation_cfg = self.pipeline.allocation;
        let analysis = self.run()?;
        let _span = self.obs.span("required_size_search");
        analysis.required_size(classified, self.trace, baseline, &allocation_cfg)
    }

    /// Everything the observer recorded so far; `None` without a
    /// recording observer.
    pub fn metrics(&self) -> Option<Metrics> {
        self.obs.snapshot()
    }

    /// The session's configuration as an ordered JSON object — the
    /// `config` echo embedded in run reports.
    pub fn config_json(&self) -> Json {
        let (mode, jobs, shards) = match &self.execution {
            Execution::Serial => ("serial", 1u64, Json::Null),
            Execution::Parallel(c) => (
                "parallel",
                c.jobs.get() as u64,
                match c.shards {
                    Some(s) => Json::UInt(s.get() as u64),
                    None => Json::Null,
                },
            ),
        };
        Json::object([
            (
                "conflict_threshold",
                Json::UInt(self.pipeline.conflict.threshold),
            ),
            (
                "working_set_definition",
                Json::from(format!("{:?}", self.pipeline.definition)),
            ),
            (
                "taken_threshold",
                Json::Float(self.pipeline.taken_threshold),
            ),
            (
                "not_taken_threshold",
                Json::Float(self.pipeline.not_taken_threshold),
            ),
            ("execution", Json::from(mode)),
            ("jobs", Json::UInt(jobs)),
            ("shards", shards),
            (
                "window_interval",
                match &self.windowing {
                    Some(w) => Json::UInt(w.interval()),
                    None => Json::Null,
                },
            ),
            (
                "window_unit",
                match &self.windowing {
                    Some(w) => Json::from(w.unit().label()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Builds a [`RunReport`] for this session's trace and recorded
    /// metrics; `None` without a recording observer.
    ///
    /// The caller (typically the CLI) appends result digests before
    /// emitting it.
    pub fn run_report(&self, command: &str) -> Option<RunReport> {
        let metrics = self.metrics()?;
        let mut report = RunReport::new(
            command,
            self.trace.meta().name.clone(),
            self.trace.len() as u64,
            self.trace.static_branch_count() as u64,
            self.config_json(),
            &metrics,
        );
        if let Some(summary) = self.resilience_summary() {
            report.set_resilience(ResilienceReport {
                supervised: true,
                attempts: summary.attempts,
                retries: summary.retries,
                downgrades: summary
                    .downgrades
                    .iter()
                    .map(|d| DowngradeReport {
                        from: d.from.to_string(),
                        to: d.to.to_string(),
                        reason: d.reason.clone(),
                    })
                    .collect(),
                faults: summary.faults.clone(),
            });
        }
        if let Some(windowed) = self.windowed.get() {
            report.set_windows(WindowsReport {
                enabled: true,
                interval: windowed.config.interval(),
                unit: windowed.config.unit().label().to_owned(),
                count: windowed.windows.len() as u64,
                records: windowed.records,
                recolors: windowed.recolors,
                mean_stability: windowed.mean_stability,
                phase_changes: windowed.phase_changes,
            });
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    fn busy_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("busy");
        let mut lcg: u64 = 5;
        for i in 0..n {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.record(0x4000 + (lcg >> 44) % 11 * 4, (lcg >> 21) & 1 == 1, i + 1);
        }
        b.finish()
    }

    #[test]
    fn serial_and_parallel_sessions_agree() {
        let trace = busy_trace(600);
        let serial = Session::new(&trace);
        let parallel =
            Session::new(&trace).with_execution(Execution::Parallel(ParallelConfig::with_jobs(3)));
        assert_eq!(serial.run().unwrap(), parallel.run().unwrap());
    }

    #[test]
    fn run_is_cached() {
        let trace = busy_trace(200);
        let session = Session::new(&trace).with_observer(Obs::recording());
        session.run().unwrap();
        session.run().unwrap();
        session.allocate(Classified(false), 8).unwrap();
        // One pipeline run: the interleave stage ran exactly once.
        let metrics = session.metrics().unwrap();
        assert_eq!(metrics.stage("interleave").unwrap().count, 1);
        assert_eq!(metrics.stage("allocate").unwrap().count, 1);
    }

    #[test]
    fn invalid_config_surfaces_as_one_error_type() {
        let trace = busy_trace(50);
        let pipeline = AnalysisPipeline {
            taken_threshold: 7.0,
            ..AnalysisPipeline::default()
        };
        let session = Session::new(&trace).with_pipeline(pipeline);
        match session.run() {
            Err(Error::Core(e)) => assert!(e.to_string().contains("taken_threshold")),
            other => panic!("expected a config error, got {other:?}"),
        }
    }

    #[test]
    fn classified_flag_switches_the_allocation_scheme() {
        let trace = busy_trace(800);
        let session = Session::new(&trace);
        let plain = session.allocate(Classified(false), 8).unwrap();
        let classified = session.allocate(Classified(true), 8).unwrap();
        // Classified reserves entries 0 and 1 for the biased classes; the
        // two schemes are genuinely different assignments.
        assert_eq!(plain.table_size(), classified.table_size());
        assert!(session.required_bht_size(Classified(false), 1024).is_ok());
        assert!(session.required_bht_size(Classified(true), 1024).is_ok());
    }

    #[test]
    fn run_report_carries_config_stages_and_trace_shape() {
        let trace = busy_trace(300);
        let session = Session::new(&trace)
            .with_execution(Execution::Parallel(ParallelConfig::with_jobs(2)))
            .with_observer(Obs::recording());
        session.run().unwrap();
        let report = session.run_report("analyze").unwrap();
        assert_eq!(report.trace_records, 300);
        assert_eq!(
            report.config.get("execution").and_then(Json::as_str),
            Some("parallel")
        );
        assert!(report.stages.iter().any(|s| s.name == "shard_detect"));
        assert!(report
            .counters
            .iter()
            .any(|(k, _)| k == "core.shards_merged"));
    }

    #[test]
    fn sessions_without_observer_report_nothing() {
        let trace = busy_trace(50);
        let session = Session::new(&trace);
        session.run().unwrap();
        assert!(session.metrics().is_none());
        assert!(session.run_report("analyze").is_none());
    }
}
