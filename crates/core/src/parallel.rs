//! Parallel sharded execution of the analysis pipeline.
//!
//! The interleave engine (§4.1 step 1) is inherently stateful: each
//! re-execution of a branch is compared against the *latest* stamp of
//! every other branch, so the result of record *k* depends on all records
//! before it. This module still extracts shard-level parallelism by
//! splitting the computation into two data-parallel passes joined by a
//! cheap serial combine:
//!
//! 1. **Summarise** (parallel): each time-contiguous shard computes a
//!    [`ShardBoundary`] — the latest stamp it leaves per branch.
//! 2. **Prefix-combine** (serial, O(shards × branches)): joining the
//!    boundaries left to right yields, for every shard, the exact engine
//!    state at its first record.
//! 3. **Detect** (parallel): each shard runs the seeded engine over its
//!    own records, producing a [`ShardDelta`]; deltas merge by integer
//!    sums into the whole-trace edge counts and branch statistics.
//!
//! Both joins are associative and every carry-in is exact, so the output
//! is **bit-identical** to [`AnalysisPipeline::run`] for any shard count
//! and any worker count — a property the test suite checks against
//! arbitrary traces (`crates/core/tests/parallel_prop.rs`).
//!
//! Workers are plain scoped threads fed from a shared
//! [`crossbeam::queue::SegQueue`] of shard indices; results carry their
//! index and are sorted after the scope joins, so scheduling order never
//! leaks into the output.

use crate::conflict::ConflictAnalysis;
use crate::merge::{ShardBoundary, ShardDelta};
use crate::pipeline::{Analysis, AnalysisPipeline};
use crate::{classify::classify_with, working_set::working_sets};
use bwsa_obs::Obs;
use bwsa_resilience::supervisor::{catch, Backoff, ResilienceError};
use bwsa_trace::profile::BranchProfile;
use bwsa_trace::{Trace, TraceShard};
use crossbeam::queue::SegQueue;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How a parallel analysis splits and schedules its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads to run (≥ 1).
    pub jobs: NonZeroUsize,
    /// Shards to split the trace into; `None` means one per worker.
    /// The result is bit-identical for every value.
    pub shards: Option<NonZeroUsize>,
}

impl ParallelConfig {
    /// A configuration running `jobs` workers, one shard per worker.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn with_jobs(jobs: usize) -> Self {
        ParallelConfig {
            jobs: NonZeroUsize::new(jobs).expect("jobs must be positive"),
            shards: None,
        }
    }

    /// One worker per available hardware thread (at least one).
    pub fn available() -> Self {
        Self::with_jobs(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The shard count this configuration resolves to.
    pub fn shard_count(&self) -> usize {
        self.shards.unwrap_or(self.jobs).get()
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::available()
    }
}

/// Applies `f` to every item on `jobs` worker threads, returning results
/// in item order regardless of how the work was scheduled.
///
/// Items are pulled from a shared queue, so uneven per-item cost balances
/// across workers; each worker accumulates `(index, result)` pairs locally
/// and merges them under one lock when its queue runs dry.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = jobs.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let queue: SegQueue<(usize, T)> = items.into_iter().enumerate().collect();
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut local = Vec::new();
                while let Some((i, item)) = queue.pop() {
                    local.push((i, f(i, item)));
                }
                collected.lock().expect("results poisoned").extend(local);
            });
        }
    })
    .expect("parallel_map worker panicked");
    let mut results = collected.into_inner().expect("results poisoned");
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Retry policy for supervised shard execution.
///
/// A failed shard (an unwind caught at the shard boundary) is re-queued
/// up to `retries` times with exponential backoff between rounds; only
/// the failed shards re-run, successful results are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRetryPolicy {
    /// Additional attempts granted to each failed shard.
    pub retries: u32,
    /// Base delay for the exponential backoff between retry rounds.
    pub backoff_base: Duration,
}

impl Default for ShardRetryPolicy {
    fn default() -> Self {
        ShardRetryPolicy {
            retries: 2,
            backoff_base: Duration::from_millis(25),
        }
    }
}

/// Strategy for running the two data-parallel shard passes.
///
/// The analysis body is generic over this so the plain (fail-fast) and
/// supervised (isolate-and-retry) engines share one implementation and
/// cannot drift apart.
trait ShardMapper {
    fn map<T, R, F>(&self, items: Vec<T>, jobs: usize, f: F) -> Result<Vec<R>, ResilienceError>
    where
        T: Send + Clone,
        R: Send,
        F: Fn(usize, T) -> R + Sync;
}

/// Fail-fast mapper: a worker panic propagates, exactly as before
/// supervision existed.
struct PlainMapper;

impl ShardMapper for PlainMapper {
    fn map<T, R, F>(&self, items: Vec<T>, jobs: usize, f: F) -> Result<Vec<R>, ResilienceError>
    where
        T: Send + Clone,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        Ok(parallel_map(items, jobs, f))
    }
}

/// Isolating mapper: each shard runs inside a `catch` boundary *in the
/// worker closure* — this must happen before the scoped-thread join,
/// because a scoped thread that unwinds surfaces only a generic
/// "scoped thread panicked" message and the typed payload
/// ([`bwsa_resilience::supervisor::InjectedFault`], deadline markers)
/// would be lost. Failed shards retry per [`ShardRetryPolicy`]; every
/// retry increments the shared counter so the run report can show it.
struct RetryMapper<'a> {
    policy: ShardRetryPolicy,
    retries: &'a AtomicU64,
}

impl ShardMapper for RetryMapper<'_> {
    fn map<T, R, F>(&self, items: Vec<T>, jobs: usize, f: F) -> Result<Vec<R>, ResilienceError>
    where
        T: Send + Clone,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let mut pending: Vec<(usize, T)> = items.into_iter().enumerate().collect();
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(pending.len(), || None);
        let mut backoff = Backoff::new(self.policy.backoff_base);
        let mut round: u32 = 0;
        loop {
            let outcomes = parallel_map(pending.clone(), jobs, |_, (original, item)| {
                (original, catch(|| f(original, item)))
            });
            let mut failed: Vec<(usize, ResilienceError)> = Vec::new();
            for (original, outcome) in outcomes {
                match outcome {
                    Ok(result) => results[original] = Some(result),
                    Err(fault) => failed.push((original, fault)),
                }
            }
            if failed.is_empty() {
                return Ok(results
                    .into_iter()
                    .map(|r| r.expect("every shard resolved"))
                    .collect());
            }
            // Deterministic error choice: the lowest-index shard's fault.
            failed.sort_by_key(|&(i, _)| i);
            let exhausted = round >= self.policy.retries;
            let fatal = failed.iter().any(|(_, fault)| !fault.is_retryable());
            if exhausted || fatal {
                let (_, fault) = failed.swap_remove(0);
                return Err(fault);
            }
            self.retries
                .fetch_add(failed.len() as u64, Ordering::Relaxed);
            let failed_indices: Vec<usize> = failed.iter().map(|&(i, _)| i).collect();
            pending.retain(|(i, _)| failed_indices.contains(i));
            round += 1;
            std::thread::sleep(backoff.delay());
        }
    }
}

fn shard_times<'a>(shard: &'a TraceShard<'a>) -> impl Iterator<Item = (u32, u64)> + 'a {
    shard
        .indexed_records()
        .map(|(id, r)| (id.as_u32(), r.time.get()))
}

fn shard_records<'a>(shard: &'a TraceShard<'a>) -> impl Iterator<Item = (u32, u64, bool)> + 'a {
    shard
        .indexed_records()
        .map(|(id, r)| (id.as_u32(), r.time.get(), r.is_taken()))
}

/// Runs the full pipeline over `trace` using sharded parallel passes.
///
/// The output is bit-identical to a serial
/// [`AnalysisPipeline::run_observed`]; see the module docs for why.
pub fn analyze_parallel(
    pipeline: &AnalysisPipeline,
    trace: &Trace,
    config: &ParallelConfig,
) -> Analysis {
    analyze_parallel_observed(pipeline, trace, config, &Obs::noop())
}

/// [`analyze_parallel`] with stage timings (`shard_summarize`,
/// `shard_combine`, `shard_detect`, then the shared downstream stages)
/// and counters reported into `obs`.
///
/// The observer never participates in the computation, so the result is
/// bit-identical whether or not it records.
pub fn analyze_parallel_observed(
    pipeline: &AnalysisPipeline,
    trace: &Trace,
    config: &ParallelConfig,
    obs: &Obs,
) -> Analysis {
    match analyze_parallel_with(pipeline, trace, config, obs, &PlainMapper) {
        Ok(analysis) => analysis,
        Err(_) => unreachable!("the plain mapper is infallible"),
    }
}

/// [`analyze_parallel_observed`] with per-shard fault isolation.
///
/// Every shard computation runs inside an unwind boundary: a shard that
/// panics (or hits an injected fault) fails alone, is retried per
/// `policy`, and — only once its retry budget is spent or the fault is
/// non-retryable (a deadline, say) — surfaces as a typed
/// [`ResilienceError`] instead of a process-killing panic. Retries are
/// counted into `retry_counter` for run reports.
///
/// On success the result is still bit-identical to the serial pipeline:
/// isolation and retry change only *whether* an answer is produced,
/// never its value.
///
/// # Errors
///
/// Returns the lowest-index failed shard's fault once retries are
/// exhausted, or the first non-retryable fault observed.
pub fn analyze_parallel_supervised(
    pipeline: &AnalysisPipeline,
    trace: &Trace,
    config: &ParallelConfig,
    obs: &Obs,
    policy: &ShardRetryPolicy,
    retry_counter: &AtomicU64,
) -> Result<Analysis, ResilienceError> {
    analyze_parallel_with(
        pipeline,
        trace,
        config,
        obs,
        &RetryMapper {
            policy: *policy,
            retries: retry_counter,
        },
    )
}

fn analyze_parallel_with<M: ShardMapper>(
    pipeline: &AnalysisPipeline,
    trace: &Trace,
    config: &ParallelConfig,
    obs: &Obs,
    mapper: &M,
) -> Result<Analysis, ResilienceError> {
    let n = trace.static_branch_count();
    let jobs = config.jobs.get();
    let shards = trace.shards(config.shard_count());

    // Pass A: per-shard latest-stamp summaries, in parallel.
    let boundaries = {
        let _span = obs.span("shard_summarize");
        mapper.map(shards.clone(), jobs, |_, shard| {
            bwsa_resilience::failpoint!("core.shard_summarize");
            ShardBoundary::of_records(n, shard_times(&shard))
        })?
    };

    // Serial exclusive-prefix combine: carry[i] is the exact engine state
    // at shard i's first record.
    let combine_span = obs.span("shard_combine");
    let mut carries = Vec::with_capacity(shards.len());
    let mut acc = ShardBoundary::empty(n);
    for boundary in &boundaries {
        carries.push(acc.clone());
        acc.join(boundary);
    }
    combine_span.finish();

    // Pass B: seeded detection per shard, in parallel.
    let deltas = {
        let _span = obs.span("shard_detect");
        mapper.map(
            shards.into_iter().zip(carries).collect(),
            jobs,
            |_, (shard, carry): (TraceShard<'_>, ShardBoundary)| {
                bwsa_resilience::failpoint!("core.shard_detect");
                ShardDelta::of_shard(n, &carry, shard_records(&shard))
            },
        )?
    };
    obs.add("core.shards_merged", deltas.len() as u64);

    // Associative fold, then the same assembly as a streaming finish.
    bwsa_resilience::failpoint!("core.shard_merge");
    let mut total = ShardDelta::empty(n);
    for delta in &deltas {
        total.merge(delta);
    }
    let ShardDelta {
        builder,
        stats,
        records,
    } = total;
    let profile = BranchProfile::from_parts(stats, records);
    let raw = builder.build();
    obs.add("core.interleave_pairs", raw.edge_count() as u64);
    obs.add("core.interleave_weight", raw.total_weight());
    let conflict = {
        let _span = obs.span("conflict_prune");
        bwsa_resilience::failpoint!("core.conflict_prune");
        ConflictAnalysis::of_raw_graph(raw, pipeline.conflict)
    };
    obs.add("core.graph_edges_raw", conflict.raw_edge_count as u64);
    obs.add("core.graph_edges_kept", conflict.graph.edge_count() as u64);
    let working = {
        let _span = obs.span("working_sets");
        bwsa_resilience::failpoint!("core.working_sets");
        working_sets(&conflict.graph, &profile, pipeline.definition)
    };
    let classification = {
        let _span = obs.span("classify");
        bwsa_resilience::failpoint!("core.classify");
        classify_with(
            &profile,
            pipeline.taken_threshold,
            pipeline.not_taken_threshold,
        )
    };
    obs.sample_peak_rss();
    Ok(Analysis {
        profile,
        conflict,
        working_sets: working,
        classification,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    fn busy_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("busy");
        let mut lcg: u64 = 7;
        for i in 0..n {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.record(0x4000 + (lcg >> 44) % 13 * 4, (lcg >> 21) & 1 == 1, i + 1);
        }
        b.finish()
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let squares = parallel_map((0u64..100).collect(), 4, |i, v| {
            assert_eq!(i as u64, v);
            v * v
        });
        assert_eq!(squares, (0u64..100).map(|v| v * v).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_oversubscribed() {
        let empty: Vec<u32> = parallel_map(Vec::new(), 8, |_, v| v);
        assert!(empty.is_empty());
        let tiny = parallel_map(vec![5], 8, |_, v: i32| v + 1);
        assert_eq!(tiny, vec![6]);
    }

    #[test]
    fn parallel_analysis_matches_serial_bitwise() {
        let trace = busy_trace(700);
        let pipeline = AnalysisPipeline::new();
        let serial = pipeline.run_observed(&trace, &Obs::noop());
        for jobs in [1, 2, 3, 8] {
            let parallel = analyze_parallel(&pipeline, &trace, &ParallelConfig::with_jobs(jobs));
            assert_eq!(parallel, serial, "jobs {jobs}");
        }
    }

    #[test]
    fn shard_count_does_not_leak_into_the_result() {
        let trace = busy_trace(200);
        let pipeline = AnalysisPipeline::new();
        let serial = pipeline.run_observed(&trace, &Obs::noop());
        for shards in [1, 2, 7, 199, 200, 500] {
            let cfg = ParallelConfig {
                jobs: NonZeroUsize::new(3).unwrap(),
                shards: NonZeroUsize::new(shards),
            };
            assert_eq!(
                analyze_parallel(&pipeline, &trace, &cfg),
                serial,
                "shards {shards}"
            );
        }
    }

    /// Serialises the failpoint-using tests below: the registry is
    /// process-global, so concurrent scoped configurations would stomp
    /// each other.
    static FAILPOINT_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn supervised_run_retries_injected_shard_faults_and_matches_serial() {
        let _serialised = FAILPOINT_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let trace = busy_trace(400);
        let pipeline = AnalysisPipeline::new();
        let serial = pipeline.run_observed(&trace, &Obs::noop());
        let cfg = ParallelConfig {
            jobs: NonZeroUsize::new(3).unwrap(),
            shards: NonZeroUsize::new(5),
        };
        let retries = AtomicU64::new(0);
        let policy = ShardRetryPolicy {
            retries: 3,
            backoff_base: Duration::from_millis(1),
        };
        let _fp = bwsa_resilience::failpoint::scoped("core.shard_detect=2*error(shard fault)")
            .expect("valid spec");
        let result =
            analyze_parallel_supervised(&pipeline, &trace, &cfg, &Obs::noop(), &policy, &retries)
                .expect("two injected faults retry away");
        assert_eq!(result, serial, "retried run stays bit-identical");
        assert_eq!(retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn exhausted_shard_retries_surface_a_typed_fault() {
        let _serialised = FAILPOINT_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let trace = busy_trace(100);
        let pipeline = AnalysisPipeline::new();
        let cfg = ParallelConfig {
            jobs: NonZeroUsize::new(2).unwrap(),
            shards: NonZeroUsize::new(4),
        };
        let retries = AtomicU64::new(0);
        let policy = ShardRetryPolicy {
            retries: 1,
            backoff_base: Duration::from_millis(1),
        };
        let _fp = bwsa_resilience::failpoint::scoped("core.shard_summarize=error(persistent)")
            .expect("valid spec");
        let err =
            analyze_parallel_supervised(&pipeline, &trace, &cfg, &Obs::noop(), &policy, &retries)
                .expect_err("the fault never clears");
        match err {
            ResilienceError::Injected { ref site, .. } => {
                assert_eq!(site, "core.shard_summarize")
            }
            ref other => panic!("expected an injected fault, got {other}"),
        }
        assert!(retries.load(Ordering::Relaxed) >= 1, "one retry round ran");
    }

    #[test]
    fn empty_trace_analyses_cleanly() {
        let trace = TraceBuilder::new("empty").finish();
        let pipeline = AnalysisPipeline::new();
        assert_eq!(
            analyze_parallel(&pipeline, &trace, &ParallelConfig::with_jobs(4)),
            pipeline.run_observed(&trace, &Obs::noop())
        );
    }
}
