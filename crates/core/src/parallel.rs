//! Parallel sharded execution of the analysis pipeline.
//!
//! The interleave engine (§4.1 step 1) is inherently stateful: each
//! re-execution of a branch is compared against the *latest* stamp of
//! every other branch, so the result of record *k* depends on all records
//! before it. This module still extracts shard-level parallelism by
//! splitting the computation into two data-parallel passes joined by a
//! cheap serial combine:
//!
//! 1. **Summarise** (parallel): each time-contiguous shard computes a
//!    [`ShardBoundary`] — the latest stamp it leaves per branch.
//! 2. **Prefix-combine** (serial, O(shards × branches)): joining the
//!    boundaries left to right yields, for every shard, the exact engine
//!    state at its first record.
//! 3. **Detect** (parallel): each shard runs the seeded engine over its
//!    own records, producing a [`ShardDelta`]; deltas merge by integer
//!    sums into the whole-trace edge counts and branch statistics.
//!
//! Both joins are associative and every carry-in is exact, so the output
//! is **bit-identical** to [`AnalysisPipeline::run`] for any shard count
//! and any worker count — a property the test suite checks against
//! arbitrary traces (`crates/core/tests/parallel_prop.rs`).
//!
//! Workers are plain scoped threads fed from a shared
//! [`crossbeam::queue::SegQueue`] of shard indices; results carry their
//! index and are sorted after the scope joins, so scheduling order never
//! leaks into the output.

use crate::conflict::ConflictAnalysis;
use crate::merge::{ShardBoundary, ShardDelta};
use crate::pipeline::{Analysis, AnalysisPipeline};
use crate::{classify::classify_with, working_set::working_sets};
use bwsa_obs::Obs;
use bwsa_trace::profile::BranchProfile;
use bwsa_trace::{Trace, TraceShard};
use crossbeam::queue::SegQueue;
use std::num::NonZeroUsize;
use std::sync::Mutex;

/// How a parallel analysis splits and schedules its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads to run (≥ 1).
    pub jobs: NonZeroUsize,
    /// Shards to split the trace into; `None` means one per worker.
    /// The result is bit-identical for every value.
    pub shards: Option<NonZeroUsize>,
}

impl ParallelConfig {
    /// A configuration running `jobs` workers, one shard per worker.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn with_jobs(jobs: usize) -> Self {
        ParallelConfig {
            jobs: NonZeroUsize::new(jobs).expect("jobs must be positive"),
            shards: None,
        }
    }

    /// One worker per available hardware thread (at least one).
    pub fn available() -> Self {
        Self::with_jobs(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The shard count this configuration resolves to.
    pub fn shard_count(&self) -> usize {
        self.shards.unwrap_or(self.jobs).get()
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::available()
    }
}

/// Applies `f` to every item on `jobs` worker threads, returning results
/// in item order regardless of how the work was scheduled.
///
/// Items are pulled from a shared queue, so uneven per-item cost balances
/// across workers; each worker accumulates `(index, result)` pairs locally
/// and merges them under one lock when its queue runs dry.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = jobs.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let queue: SegQueue<(usize, T)> = items.into_iter().enumerate().collect();
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut local = Vec::new();
                while let Some((i, item)) = queue.pop() {
                    local.push((i, f(i, item)));
                }
                collected.lock().expect("results poisoned").extend(local);
            });
        }
    })
    .expect("parallel_map worker panicked");
    let mut results = collected.into_inner().expect("results poisoned");
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

fn shard_times<'a>(shard: &'a TraceShard<'a>) -> impl Iterator<Item = (u32, u64)> + 'a {
    shard
        .indexed_records()
        .map(|(id, r)| (id.as_u32(), r.time.get()))
}

fn shard_records<'a>(shard: &'a TraceShard<'a>) -> impl Iterator<Item = (u32, u64, bool)> + 'a {
    shard
        .indexed_records()
        .map(|(id, r)| (id.as_u32(), r.time.get(), r.is_taken()))
}

/// Runs the full pipeline over `trace` using sharded parallel passes.
///
/// The output is bit-identical to a serial
/// [`AnalysisPipeline::run_observed`]; see the module docs for why.
pub fn analyze_parallel(
    pipeline: &AnalysisPipeline,
    trace: &Trace,
    config: &ParallelConfig,
) -> Analysis {
    analyze_parallel_observed(pipeline, trace, config, &Obs::noop())
}

/// [`analyze_parallel`] with stage timings (`shard_summarize`,
/// `shard_combine`, `shard_detect`, then the shared downstream stages)
/// and counters reported into `obs`.
///
/// The observer never participates in the computation, so the result is
/// bit-identical whether or not it records.
pub fn analyze_parallel_observed(
    pipeline: &AnalysisPipeline,
    trace: &Trace,
    config: &ParallelConfig,
    obs: &Obs,
) -> Analysis {
    let n = trace.static_branch_count();
    let jobs = config.jobs.get();
    let shards = trace.shards(config.shard_count());

    // Pass A: per-shard latest-stamp summaries, in parallel.
    let boundaries = {
        let _span = obs.span("shard_summarize");
        parallel_map(shards.clone(), jobs, |_, shard| {
            ShardBoundary::of_records(n, shard_times(&shard))
        })
    };

    // Serial exclusive-prefix combine: carry[i] is the exact engine state
    // at shard i's first record.
    let combine_span = obs.span("shard_combine");
    let mut carries = Vec::with_capacity(shards.len());
    let mut acc = ShardBoundary::empty(n);
    for boundary in &boundaries {
        carries.push(acc.clone());
        acc.join(boundary);
    }
    combine_span.finish();

    // Pass B: seeded detection per shard, in parallel.
    let deltas = {
        let _span = obs.span("shard_detect");
        parallel_map(
            shards.into_iter().zip(carries).collect(),
            jobs,
            |_, (shard, carry): (TraceShard<'_>, ShardBoundary)| {
                ShardDelta::of_shard(n, &carry, shard_records(&shard))
            },
        )
    };
    obs.add("core.shards_merged", deltas.len() as u64);

    // Associative fold, then the same assembly as a streaming finish.
    let mut total = ShardDelta::empty(n);
    for delta in &deltas {
        total.merge(delta);
    }
    let ShardDelta {
        builder,
        stats,
        records,
    } = total;
    let profile = BranchProfile::from_parts(stats, records);
    let raw = builder.build();
    obs.add("core.interleave_pairs", raw.edge_count() as u64);
    obs.add("core.interleave_weight", raw.total_weight());
    let conflict = {
        let _span = obs.span("conflict_prune");
        ConflictAnalysis::of_raw_graph(raw, pipeline.conflict)
    };
    obs.add("core.graph_edges_raw", conflict.raw_edge_count as u64);
    obs.add("core.graph_edges_kept", conflict.graph.edge_count() as u64);
    let working = {
        let _span = obs.span("working_sets");
        working_sets(&conflict.graph, &profile, pipeline.definition)
    };
    let classification = {
        let _span = obs.span("classify");
        classify_with(
            &profile,
            pipeline.taken_threshold,
            pipeline.not_taken_threshold,
        )
    };
    obs.sample_peak_rss();
    Analysis {
        profile,
        conflict,
        working_sets: working,
        classification,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    fn busy_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("busy");
        let mut lcg: u64 = 7;
        for i in 0..n {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.record(0x4000 + (lcg >> 44) % 13 * 4, (lcg >> 21) & 1 == 1, i + 1);
        }
        b.finish()
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let squares = parallel_map((0u64..100).collect(), 4, |i, v| {
            assert_eq!(i as u64, v);
            v * v
        });
        assert_eq!(squares, (0u64..100).map(|v| v * v).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_oversubscribed() {
        let empty: Vec<u32> = parallel_map(Vec::new(), 8, |_, v| v);
        assert!(empty.is_empty());
        let tiny = parallel_map(vec![5], 8, |_, v: i32| v + 1);
        assert_eq!(tiny, vec![6]);
    }

    #[test]
    fn parallel_analysis_matches_serial_bitwise() {
        let trace = busy_trace(700);
        let pipeline = AnalysisPipeline::new();
        let serial = pipeline.run_observed(&trace, &Obs::noop());
        for jobs in [1, 2, 3, 8] {
            let parallel = analyze_parallel(&pipeline, &trace, &ParallelConfig::with_jobs(jobs));
            assert_eq!(parallel, serial, "jobs {jobs}");
        }
    }

    #[test]
    fn shard_count_does_not_leak_into_the_result() {
        let trace = busy_trace(200);
        let pipeline = AnalysisPipeline::new();
        let serial = pipeline.run_observed(&trace, &Obs::noop());
        for shards in [1, 2, 7, 199, 200, 500] {
            let cfg = ParallelConfig {
                jobs: NonZeroUsize::new(3).unwrap(),
                shards: NonZeroUsize::new(shards),
            };
            assert_eq!(
                analyze_parallel(&pipeline, &trace, &cfg),
                serial,
                "shards {shards}"
            );
        }
    }

    #[test]
    fn empty_trace_analyses_cleanly() {
        let trace = TraceBuilder::new("empty").finish();
        let pipeline = AnalysisPipeline::new();
        assert_eq!(
            analyze_parallel(&pipeline, &trace, &ParallelConfig::with_jobs(4)),
            pipeline.run_observed(&trace, &Obs::noop())
        );
    }
}
