//! Supervised pipeline execution: retries, deadlines, memory budgets,
//! and graceful degradation.
//!
//! A supervised run walks a **degradation ladder** instead of trusting
//! one engine:
//!
//! 1. **Parallel** (only when the session asked for it) — the sharded
//!    engine with per-shard fault isolation and retry
//!    ([`crate::parallel::analyze_parallel_supervised`]).
//! 2. **Serial** — the reference implementation, whole-run attempts with
//!    exponential backoff between retries.
//! 3. **Streaming** — [`crate::StreamingAnalysis`], the last resort and
//!    the low-memory path.
//!
//! Every rung produces a bit-identical [`Analysis`] when it succeeds
//! (the workspace's serial-equivalence guarantees), so downgrading
//! trades only throughput, never correctness. A rung is abandoned when
//! its retry budget is spent or it hits a non-retryable fault (a
//! deadline, a blown memory budget); the walk then drops one rung and
//! records a [`Downgrade`]. Only when the *last* rung fails does the
//! run surface a typed [`Error`] — a supervised run never escapes as a
//! raw panic.
//!
//! Deadlines are cooperative: [`SupervisorConfig::max_wall`] arms the
//! process-wide [`bwsa_resilience::watchdog`], and every failpoint site
//! doubles as a cancellation point. Memory budgets are soft: before each
//! non-final rung the peak RSS is compared against
//! [`SupervisorConfig::max_rss_bytes`], and a run already over budget
//! skips straight to the streaming rung.

use crate::error::Error;
use crate::parallel::{analyze_parallel_supervised, ParallelConfig, ShardRetryPolicy};
use crate::pipeline::{Analysis, AnalysisPipeline};
use crate::session::Execution;
use crate::StreamingAnalysis;
use bwsa_obs::Obs;
use bwsa_resilience::supervisor::{catch, Backoff, ResilienceError};
use bwsa_resilience::watchdog;
use bwsa_trace::Trace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Limits and retry policy for a supervised run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Additional attempts per rung (and per shard on the parallel
    /// rung) before downgrading.
    pub retries: u32,
    /// Base delay for exponential backoff between retries.
    pub backoff_base: Duration,
    /// Cooperative wall-clock deadline per attempt; `None` disables the
    /// watchdog.
    pub max_wall: Option<Duration>,
    /// Soft peak-RSS budget in bytes; a run already over it skips
    /// straight to the streaming rung. `None` disables the check.
    pub max_rss_bytes: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            retries: 2,
            backoff_base: Duration::from_millis(25),
            max_wall: None,
            max_rss_bytes: None,
        }
    }
}

/// One recorded drop down the degradation ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Downgrade {
    /// The rung that failed ("parallel", "serial").
    pub from: &'static str,
    /// The rung the run fell back to ("serial", "streaming").
    pub to: &'static str,
    /// The fault that forced the drop, rendered for humans.
    pub reason: String,
}

/// What a supervised run survived: attempts, retries, downgrades, and
/// every fault observed along the way.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResilienceSummary {
    /// Whole-rung attempts made (min 1 for a run that executed).
    pub attempts: u64,
    /// Retries granted, counting both whole-rung retries and per-shard
    /// retries inside the parallel rung.
    pub retries: u64,
    /// Each drop down the degradation ladder, in order.
    pub downgrades: Vec<Downgrade>,
    /// Every fault observed, rendered for humans, in order.
    pub faults: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rung {
    Parallel(ParallelConfig),
    Serial,
    Streaming,
}

impl Rung {
    fn name(self) -> &'static str {
        match self {
            Rung::Parallel(_) => "parallel",
            Rung::Serial => "serial",
            Rung::Streaming => "streaming",
        }
    }
}

fn streaming_replay(pipeline: &AnalysisPipeline, trace: &Trace, obs: &Obs) -> Analysis {
    let mut streaming = StreamingAnalysis::new(&trace.meta().name);
    for record in trace.records() {
        streaming.push(record);
    }
    streaming.finish_observed(pipeline, obs)
}

/// Runs the pipeline under supervision, walking the degradation ladder.
///
/// Returns the analysis (or the last rung's fault as a typed [`Error`])
/// *and* the [`ResilienceSummary`] of everything survived along the way
/// — the summary is meaningful even when the run fails, so callers can
/// still report what was attempted.
pub(crate) fn run_supervised(
    pipeline: &AnalysisPipeline,
    trace: &Trace,
    execution: &Execution,
    config: &SupervisorConfig,
    obs: &Obs,
) -> (Result<Analysis, Error>, ResilienceSummary) {
    let rungs: Vec<Rung> = match execution {
        Execution::Parallel(c) => vec![Rung::Parallel(*c), Rung::Serial, Rung::Streaming],
        _ => vec![Rung::Serial, Rung::Streaming],
    };
    let shard_retries = AtomicU64::new(0);
    let policy = ShardRetryPolicy {
        retries: config.retries,
        backoff_base: config.backoff_base,
    };
    let mut summary = ResilienceSummary::default();
    let mut index = 0;
    while index < rungs.len() {
        let rung = rungs[index];
        let last_rung = index + 1 == rungs.len();

        // Soft memory budget: when the process is already over it, the
        // heavier rungs are pointless — jump to the final (streaming)
        // rung rather than the next one.
        if !last_rung {
            if let (Some(budget), Some(peak)) =
                (config.max_rss_bytes, bwsa_obs::rss::peak_rss_bytes())
            {
                if peak > budget {
                    let fault = ResilienceError::MemoryBudget {
                        peak_bytes: peak,
                        budget_bytes: budget,
                    };
                    obs.add("resilience.faults", 1);
                    obs.add("resilience.downgrades", 1);
                    summary.faults.push(fault.to_string());
                    summary.downgrades.push(Downgrade {
                        from: rung.name(),
                        to: Rung::Streaming.name(),
                        reason: fault.to_string(),
                    });
                    index = rungs.len() - 1;
                    continue;
                }
            }
        }

        // The parallel rung retries at shard granularity inside the
        // mapper; whole-rung retries apply to the serial rungs.
        let rung_retries = match rung {
            Rung::Parallel(_) => 0,
            _ => config.retries,
        };
        let mut backoff = Backoff::new(config.backoff_base);
        let mut last_fault: Option<ResilienceError> = None;
        for attempt in 0..=rung_retries {
            summary.attempts += 1;
            obs.add("resilience.attempts", 1);
            let _watchdog = config
                .max_wall
                .map(|wall| watchdog::arm(Instant::now() + wall));
            let outcome: Result<Analysis, ResilienceError> = match rung {
                // The outer catch contains faults raised outside the shard
                // mapper (the merge fold and the post-merge tail stages).
                Rung::Parallel(c) => catch(|| {
                    analyze_parallel_supervised(pipeline, trace, &c, obs, &policy, &shard_retries)
                })
                .and_then(|inner| inner),
                Rung::Serial => catch(|| pipeline.run_observed(trace, obs)),
                Rung::Streaming => catch(|| streaming_replay(pipeline, trace, obs)),
            };
            summary.retries += shard_retries.swap(0, Ordering::Relaxed);
            match outcome {
                Ok(analysis) => return (Ok(analysis), summary),
                Err(fault) => {
                    obs.add("resilience.faults", 1);
                    summary.faults.push(fault.to_string());
                    let retryable = fault.is_retryable();
                    last_fault = Some(fault);
                    if !retryable {
                        break;
                    }
                    if attempt < rung_retries {
                        summary.retries += 1;
                        obs.add("resilience.retries", 1);
                        std::thread::sleep(backoff.delay());
                    }
                }
            }
        }

        let fault = last_fault.expect("a failed rung recorded its fault");
        if last_rung {
            return (Err(Error::Resilience(fault)), summary);
        }
        obs.add("resilience.downgrades", 1);
        summary.downgrades.push(Downgrade {
            from: rung.name(),
            to: rungs[index + 1].name(),
            reason: fault.to_string(),
        });
        index += 1;
    }
    unreachable!("the ladder always has at least one rung");
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_resilience::failpoint;
    use bwsa_trace::TraceBuilder;
    use std::num::NonZeroUsize;
    use std::sync::Mutex;

    /// Serialises failpoint-driven tests; the registry is process-global.
    static FAILPOINT_TESTS: Mutex<()> = Mutex::new(());

    fn busy_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("busy");
        let mut lcg: u64 = 3;
        for i in 0..n {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.record(0x4000 + (lcg >> 44) % 9 * 4, (lcg >> 21) & 1 == 1, i + 1);
        }
        b.finish()
    }

    fn quick_config() -> SupervisorConfig {
        SupervisorConfig {
            retries: 1,
            backoff_base: Duration::from_millis(1),
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn fault_free_supervision_matches_the_plain_pipeline() {
        let _serialised = FAILPOINT_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let trace = busy_trace(500);
        let pipeline = AnalysisPipeline::new();
        let plain = pipeline.run_observed(&trace, &Obs::noop());
        for execution in [
            Execution::Serial,
            Execution::Parallel(ParallelConfig {
                jobs: NonZeroUsize::new(3).unwrap(),
                shards: NonZeroUsize::new(4),
            }),
        ] {
            let (result, summary) =
                run_supervised(&pipeline, &trace, &execution, &quick_config(), &Obs::noop());
            assert_eq!(result.expect("no faults"), plain);
            assert_eq!(summary.attempts, 1);
            assert_eq!(summary.retries, 0);
            assert!(summary.downgrades.is_empty());
            assert!(summary.faults.is_empty());
        }
    }

    #[test]
    fn a_serial_only_fault_downgrades_to_streaming_bit_identically() {
        let _serialised = FAILPOINT_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let trace = busy_trace(400);
        let pipeline = AnalysisPipeline::new();
        let plain = pipeline.run_observed(&trace, &Obs::noop());
        // core.profile only exists on the serial path; the streaming
        // rung does not traverse it, so the ladder recovers there.
        let _fp = failpoint::scoped("core.profile=error(stage blew up)").expect("valid spec");
        let (result, summary) = run_supervised(
            &pipeline,
            &trace,
            &Execution::Serial,
            &quick_config(),
            &Obs::noop(),
        );
        assert_eq!(result.expect("streaming rung recovers"), plain);
        assert_eq!(summary.attempts, 3, "two serial attempts + streaming");
        assert_eq!(summary.retries, 1);
        assert_eq!(summary.faults.len(), 2);
        assert_eq!(
            summary.downgrades,
            vec![Downgrade {
                from: "serial",
                to: "streaming",
                reason: "injected fault at 'core.profile': stage blew up".into(),
            }]
        );
    }

    #[test]
    fn a_fault_on_every_rung_surfaces_typed_not_as_a_panic() {
        let _serialised = FAILPOINT_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let trace = busy_trace(200);
        let pipeline = AnalysisPipeline::new();
        // conflict_prune runs on every rung: serial, parallel tail, and
        // the streaming finish. Nothing can succeed.
        let _fp = failpoint::scoped("core.conflict_prune=error(persistent)").expect("valid spec");
        let (result, summary) = run_supervised(
            &pipeline,
            &trace,
            &Execution::Serial,
            &quick_config(),
            &Obs::noop(),
        );
        match result {
            Err(Error::Resilience(ResilienceError::Injected { site, .. })) => {
                assert_eq!(site, "core.conflict_prune")
            }
            other => panic!("expected a typed injected fault, got {other:?}"),
        }
        assert_eq!(summary.downgrades.len(), 1, "serial -> streaming");
        assert!(summary.attempts >= 3);
    }

    #[test]
    fn a_deadline_is_not_retried_on_the_same_rung() {
        let _serialised = FAILPOINT_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let trace = busy_trace(300);
        let pipeline = AnalysisPipeline::new();
        let plain = pipeline.run_observed(&trace, &Obs::noop());
        // A 30ms delay at a serial-only site against a 5ms deadline: the
        // sliced sleep observes the watchdog and cancels the rung. The
        // streaming rung never traverses the site and finishes in time.
        let _fp = failpoint::scoped("core.interleave=delay(30)").expect("valid spec");
        let config = SupervisorConfig {
            retries: 3,
            backoff_base: Duration::from_millis(1),
            max_wall: Some(Duration::from_millis(5)),
            ..SupervisorConfig::default()
        };
        let (result, summary) =
            run_supervised(&pipeline, &trace, &Execution::Serial, &config, &Obs::noop());
        assert_eq!(result.expect("streaming rung recovers"), plain);
        assert_eq!(
            summary.attempts, 2,
            "a timeout downgrades immediately, no same-rung retry"
        );
        assert_eq!(summary.retries, 0);
        assert!(summary.faults[0].contains("deadline exceeded"));
    }

    #[test]
    fn an_exhausted_memory_budget_skips_to_the_streaming_rung() {
        let _serialised = FAILPOINT_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let trace = busy_trace(300);
        let pipeline = AnalysisPipeline::new();
        let plain = pipeline.run_observed(&trace, &Obs::noop());
        let config = SupervisorConfig {
            max_rss_bytes: Some(1), // any real process is over this
            ..quick_config()
        };
        let execution = Execution::Parallel(ParallelConfig::with_jobs(2));
        let (result, summary) =
            run_supervised(&pipeline, &trace, &execution, &config, &Obs::noop());
        assert_eq!(result.expect("streaming still runs"), plain);
        assert_eq!(summary.attempts, 1, "parallel and serial never attempted");
        assert_eq!(
            summary.downgrades,
            vec![Downgrade {
                from: "parallel",
                to: "streaming",
                reason: summary.faults[0].clone(),
            }]
        );
        assert!(summary.faults[0].contains("memory budget"));
    }
}
