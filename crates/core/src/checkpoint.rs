//! Resumable streaming analysis: run the paper's pipeline over a record
//! stream with periodic checkpoints, so a multi-hour profiling analysis
//! survives being killed.
//!
//! [`StreamingAnalysis`] accumulates exactly the state the in-memory
//! pipeline derives from a trace — the pc interner, per-branch execution
//! statistics, the interleave edge counts, and each branch's latest
//! timestamp — one record at a time. [`StreamingAnalysis::save`] freezes
//! that state into a self-validating byte blob (magic `BWCK`, version,
//! kind 2, CRC32 trailer; simulation checkpoints use kind 1, see
//! [`bwsa_predictor::SimCheckpoint`]); [`StreamingAnalysis::load`] rebuilds
//! the engine from it. Feeding the remaining records afterwards yields an
//! [`Analysis`] bit-identical to an uninterrupted run: the recency index is
//! the only state not serialised, and it is fully derivable from the
//! latest-timestamp table.

use crate::error::CoreError;
use crate::interleave::StreamingInterleave;
use crate::pipeline::{Analysis, AnalysisPipeline};
use crate::{classify::classify_with, conflict::ConflictAnalysis, working_set::working_sets};
use bwsa_graph::GraphBuilder;
use bwsa_trace::codec::{self, Cursor};
use bwsa_trace::profile::{BranchProfile, BranchStats};
use bwsa_trace::{BranchRecord, BranchTable, TraceError};

/// Magic prefix shared by all checkpoint files in the workspace.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"BWCK";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u8 = 1;
/// Kind byte for analysis checkpoints (simulation checkpoints use 1).
pub const CHECKPOINT_KIND_ANALYSIS: u8 = 2;

/// An incremental, checkpointable run of the full analysis pipeline.
///
/// # Example
///
/// ```
/// use bwsa_core::{pipeline::AnalysisPipeline, StreamingAnalysis};
/// use bwsa_trace::{BranchRecord, TraceBuilder};
///
/// let mut t = TraceBuilder::new("demo");
/// for i in 0..1000u64 {
///     t.record(0x100 + (i % 3) * 4, i % 2 == 0, i + 1);
/// }
/// let trace = t.finish();
/// let pipeline = AnalysisPipeline::new();
///
/// // Stream half the records, "crash", resume from the checkpoint.
/// let mut first = StreamingAnalysis::new("demo");
/// for r in &trace.records()[..500] {
///     first.push(r);
/// }
/// let blob = first.save();
///
/// let mut resumed = StreamingAnalysis::load(&blob).unwrap();
/// assert_eq!(resumed.records_consumed(), 500);
/// for r in &trace.records()[500..] {
///     resumed.push(r);
/// }
/// let direct = pipeline.run_observed(&trace, &bwsa_obs::Obs::noop());
/// assert_eq!(resumed.finish(&pipeline), direct);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingAnalysis {
    trace_name: String,
    interleave: StreamingInterleave,
    stats: Vec<BranchStats>,
    records_consumed: u64,
}

impl StreamingAnalysis {
    /// Creates an empty analysis for the named trace.
    pub fn new(trace_name: impl Into<String>) -> Self {
        StreamingAnalysis {
            trace_name: trace_name.into(),
            interleave: StreamingInterleave::new(),
            stats: Vec::new(),
            records_consumed: 0,
        }
    }

    /// Name of the trace being analysed (from the stream header).
    pub fn trace_name(&self) -> &str {
        &self.trace_name
    }

    /// Dynamic branches consumed so far.
    pub fn records_consumed(&self) -> u64 {
        self.records_consumed
    }

    /// Distinct static branches seen so far.
    pub fn static_branch_count(&self) -> usize {
        self.interleave.branch_count()
    }

    /// Consumes one dynamic branch record, updating the interleave engine
    /// and the per-branch statistics exactly as
    /// [`bwsa_trace::profile::BranchProfile::from_trace`] would.
    pub fn push(&mut self, rec: &BranchRecord) {
        let id = self.interleave.push(rec);
        if id.index() >= self.stats.len() {
            self.stats.resize(id.index() + 1, BranchStats::default());
        }
        let s = &mut self.stats[id.index()];
        if s.executions == 0 {
            s.first_time = rec.time;
        }
        s.executions += 1;
        s.taken += rec.is_taken() as u64;
        s.last_time = rec.time;
        self.records_consumed += 1;
    }

    /// Drains a fallible record source (e.g. a
    /// [`bwsa_trace::stream::StreamReader`]) into the analysis.
    ///
    /// # Errors
    ///
    /// Propagates the first error the source yields; records consumed
    /// before the error remain accounted for.
    pub fn consume<I>(&mut self, records: I) -> Result<(), TraceError>
    where
        I: IntoIterator<Item = Result<BranchRecord, TraceError>>,
    {
        for record in records {
            self.push(&record?);
        }
        Ok(())
    }

    /// Completes the pipeline on everything consumed so far, producing the
    /// same [`Analysis`] that [`AnalysisPipeline::run_observed`] computes
    /// from an in-memory trace of the same records.
    pub fn finish(self, pipeline: &AnalysisPipeline) -> Analysis {
        self.finish_observed(pipeline, &bwsa_obs::Obs::noop())
    }

    /// [`StreamingAnalysis::finish`] with stage timings and graph
    /// counters reported into `obs`. The result is bit-identical either
    /// way.
    pub fn finish_observed(self, pipeline: &AnalysisPipeline, obs: &bwsa_obs::Obs) -> Analysis {
        let StreamingAnalysis {
            interleave,
            stats,
            records_consumed,
            ..
        } = self;
        let (builder, _table) = interleave.finish();
        let profile = BranchProfile::from_parts(stats, records_consumed);
        let raw = builder.build();
        obs.add("core.interleave_pairs", raw.edge_count() as u64);
        obs.add("core.interleave_weight", raw.total_weight());
        let conflict = {
            let _span = obs.span("conflict_prune");
            bwsa_resilience::failpoint!("core.conflict_prune");
            ConflictAnalysis::of_raw_graph(raw, pipeline.conflict)
        };
        obs.add("core.graph_edges_raw", conflict.raw_edge_count as u64);
        obs.add("core.graph_edges_kept", conflict.graph.edge_count() as u64);
        let working = {
            let _span = obs.span("working_sets");
            bwsa_resilience::failpoint!("core.working_sets");
            working_sets(&conflict.graph, &profile, pipeline.definition)
        };
        let classification = {
            let _span = obs.span("classify");
            bwsa_resilience::failpoint!("core.classify");
            classify_with(
                &profile,
                pipeline.taken_threshold,
                pipeline.not_taken_threshold,
            )
        };
        obs.sample_peak_rss();
        Analysis {
            profile,
            conflict,
            working_sets: working,
            classification,
        }
    }

    /// [`StreamingAnalysis::save`] with the serialisation time recorded
    /// as a `checkpoint_save` span.
    pub fn save_observed(&self, obs: &bwsa_obs::Obs) -> Vec<u8> {
        let _span = obs.span("checkpoint_save");
        self.save()
    }

    /// [`StreamingAnalysis::load`] with the restore time recorded as a
    /// `checkpoint_restore` span.
    ///
    /// # Errors
    ///
    /// Exactly those of [`StreamingAnalysis::load`].
    pub fn load_observed(bytes: &[u8], obs: &bwsa_obs::Obs) -> Result<Self, CoreError> {
        let _span = obs.span("checkpoint_restore");
        Self::load(bytes)
    }

    /// Serialises the analysis state, appending a CRC32 of everything
    /// before it.
    pub fn save(&self) -> Vec<u8> {
        bwsa_resilience::failpoint!("core.checkpoint_save");
        let mut buf = Vec::new();
        buf.extend_from_slice(&CHECKPOINT_MAGIC);
        buf.push(CHECKPOINT_VERSION);
        buf.push(CHECKPOINT_KIND_ANALYSIS);
        codec::put_varint(&mut buf, self.trace_name.len() as u64);
        buf.extend_from_slice(self.trace_name.as_bytes());
        codec::put_varint(&mut buf, self.records_consumed);
        // Interned pcs in id order — interning them again in this order
        // reproduces the table.
        codec::put_varint(&mut buf, self.interleave.table.len() as u64);
        for (_, pc) in self.interleave.table.iter() {
            codec::put_varint(&mut buf, pc.addr());
        }
        // Per-branch statistics, parallel to the table.
        codec::put_varint(&mut buf, self.stats.len() as u64);
        for s in &self.stats {
            codec::put_varint(&mut buf, s.executions);
            codec::put_varint(&mut buf, s.taken);
            codec::put_varint(&mut buf, s.first_time.get());
            codec::put_varint(&mut buf, s.last_time.get());
        }
        // Latest stamp per branch; stamp+1 so 0 encodes "never executed".
        codec::put_varint(&mut buf, self.interleave.last_stamp.len() as u64);
        for stamp in &self.interleave.last_stamp {
            codec::put_varint(&mut buf, stamp.map_or(0, |t| t + 1));
        }
        // Accumulated interleave edges, sorted for a deterministic
        // encoding (the builder stores them hashed).
        let mut edges: Vec<(u32, u32, u64)> = self.interleave.builder.edges().collect();
        edges.sort_unstable();
        codec::put_varint(&mut buf, edges.len() as u64);
        for (a, b, w) in edges {
            codec::put_varint(&mut buf, u64::from(a));
            codec::put_varint(&mut buf, u64::from(b));
            codec::put_varint(&mut buf, w);
        }
        let crc = codec::crc32(&buf);
        codec::put_u32_le(&mut buf, crc);
        buf
    }

    /// Rebuilds an analysis from bytes produced by
    /// [`StreamingAnalysis::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] on a bad magic, unsupported
    /// version, wrong kind, CRC mismatch, or malformed payload.
    pub fn load(bytes: &[u8]) -> Result<Self, CoreError> {
        bwsa_resilience::failpoint!("core.checkpoint_restore");
        fn malformed(e: TraceError) -> CoreError {
            CoreError::checkpoint(format!("malformed state: {e}"))
        }
        fn get_len(cur: &mut Cursor<'_>, what: &str) -> Result<usize, CoreError> {
            let len = cur.get_varint().map_err(malformed)? as usize;
            if len > cur.remaining() {
                return Err(CoreError::checkpoint(format!(
                    "checkpoint claims {len} {what} but only {} bytes remain",
                    cur.remaining()
                )));
            }
            Ok(len)
        }
        if bytes.len() < CHECKPOINT_MAGIC.len() + 2 + 4 {
            return Err(CoreError::checkpoint("checkpoint too short to be valid"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("split_at(len-4)"));
        if codec::crc32(body) != stored {
            return Err(CoreError::checkpoint(
                "checkpoint CRC mismatch — file is corrupt or truncated",
            ));
        }
        let mut cur = Cursor::new(body);
        let magic = cur.take(4).map_err(malformed)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(CoreError::checkpoint("not a checkpoint file (bad magic)"));
        }
        let version = cur.get_u8().map_err(malformed)?;
        if version != CHECKPOINT_VERSION {
            return Err(CoreError::checkpoint(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let kind = cur.get_u8().map_err(malformed)?;
        if kind != CHECKPOINT_KIND_ANALYSIS {
            return Err(CoreError::checkpoint(format!(
                "checkpoint kind {kind} is not an analysis checkpoint"
            )));
        }
        let name_len = get_len(&mut cur, "name bytes")?;
        let trace_name = String::from_utf8(cur.take(name_len).map_err(malformed)?.to_vec())
            .map_err(|e| CoreError::checkpoint(format!("trace name is not utf-8: {e}")))?;
        let records_consumed = cur.get_varint().map_err(malformed)?;

        let n_pcs = get_len(&mut cur, "pcs")?;
        let mut table = BranchTable::new();
        for _ in 0..n_pcs {
            let pc = cur.get_varint().map_err(malformed)?;
            table.intern(pc.into());
        }
        if table.len() != n_pcs {
            return Err(CoreError::checkpoint("duplicate pc in checkpoint table"));
        }

        let n_stats = get_len(&mut cur, "stat entries")?;
        if n_stats != n_pcs {
            return Err(CoreError::checkpoint(format!(
                "checkpoint has {n_stats} stat entries for {n_pcs} branches"
            )));
        }
        let mut stats = Vec::with_capacity(n_stats);
        for _ in 0..n_stats {
            let executions = cur.get_varint().map_err(malformed)?;
            let taken = cur.get_varint().map_err(malformed)?;
            let first_time = cur.get_varint().map_err(malformed)?;
            let last_time = cur.get_varint().map_err(malformed)?;
            if taken > executions {
                return Err(CoreError::checkpoint(
                    "stat entry has more taken than executed",
                ));
            }
            stats.push(BranchStats {
                executions,
                taken,
                first_time: first_time.into(),
                last_time: last_time.into(),
            });
        }

        let n_stamps = get_len(&mut cur, "stamps")?;
        if n_stamps != n_pcs {
            return Err(CoreError::checkpoint(format!(
                "checkpoint has {n_stamps} stamps for {n_pcs} branches"
            )));
        }
        let mut last_stamp = Vec::with_capacity(n_stamps);
        for _ in 0..n_stamps {
            let raw = cur.get_varint().map_err(malformed)?;
            last_stamp.push(raw.checked_sub(1));
        }

        let n_edges = get_len(&mut cur, "edges")?;
        let mut builder = GraphBuilder::new(n_pcs as u32);
        for _ in 0..n_edges {
            let a = cur.get_varint().map_err(malformed)?;
            let b = cur.get_varint().map_err(malformed)?;
            let w = cur.get_varint().map_err(malformed)?;
            let (a, b) = (
                u32::try_from(a).map_err(|_| CoreError::checkpoint("edge endpoint exceeds u32"))?,
                u32::try_from(b).map_err(|_| CoreError::checkpoint("edge endpoint exceeds u32"))?,
            );
            if a as usize >= n_pcs || b as usize >= n_pcs {
                return Err(CoreError::checkpoint(format!(
                    "edge ({a}, {b}) outside the {n_pcs}-branch table"
                )));
            }
            builder
                .try_add_edge(a, b, w)
                .map_err(|e| CoreError::checkpoint(format!("bad checkpoint edge: {e}")))?;
        }
        if !cur.is_empty() {
            return Err(CoreError::checkpoint(format!(
                "{} trailing bytes after analysis state",
                cur.remaining()
            )));
        }
        Ok(StreamingAnalysis {
            trace_name,
            interleave: StreamingInterleave::from_parts(table, builder, last_stamp),
            stats,
            records_consumed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::{Trace, TraceBuilder};

    fn busy_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("busy");
        let mut lcg: u64 = 99;
        for i in 0..n {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.record(0x4000 + (lcg >> 44) % 17 * 4, (lcg >> 21) & 1 == 1, i + 1);
        }
        b.finish()
    }

    fn run_streaming(trace: &Trace, split: usize) -> Analysis {
        let pipeline = AnalysisPipeline::new();
        let mut first = StreamingAnalysis::new(&trace.meta().name);
        for r in &trace.records()[..split] {
            first.push(r);
        }
        let blob = first.save();
        let mut resumed = StreamingAnalysis::load(&blob).expect("checkpoint loads");
        assert_eq!(resumed.records_consumed(), split as u64);
        assert_eq!(resumed.trace_name(), trace.meta().name);
        for r in &trace.records()[split..] {
            resumed.push(r);
        }
        resumed.finish(&pipeline)
    }

    #[test]
    fn checkpointed_run_matches_in_memory_pipeline_at_any_split() {
        let trace = busy_trace(800);
        let expected = AnalysisPipeline::new().run_observed(&trace, &bwsa_obs::Obs::noop());
        for split in [0, 1, 399, 400, 799, 800] {
            assert_eq!(run_streaming(&trace, split), expected, "split {split}");
        }
    }

    #[test]
    fn consume_drains_a_fallible_source() {
        let trace = busy_trace(300);
        let mut a = StreamingAnalysis::new("busy");
        a.consume(trace.records().iter().map(|r| Ok(*r))).unwrap();
        assert_eq!(a.records_consumed(), 300);
        assert_eq!(
            a.finish(&AnalysisPipeline::new()),
            AnalysisPipeline::new().run_observed(&trace, &bwsa_obs::Obs::noop())
        );
    }

    #[test]
    fn consume_stops_at_the_first_error() {
        let mut a = StreamingAnalysis::new("x");
        let records = vec![
            Ok(BranchRecord::from_raw(0xa, true, 1)),
            Err(TraceError::format("boom")),
            Ok(BranchRecord::from_raw(0xb, true, 3)),
        ];
        assert!(a.consume(records).is_err());
        assert_eq!(a.records_consumed(), 1, "prefix before the error counts");
    }

    #[test]
    fn empty_analysis_round_trips() {
        let a = StreamingAnalysis::new("empty");
        let b = StreamingAnalysis::load(&a.save()).unwrap();
        assert_eq!(b.records_consumed(), 0);
        assert_eq!(b.static_branch_count(), 0);
        assert_eq!(b.trace_name(), "empty");
    }

    #[test]
    fn corrupt_blobs_are_rejected() {
        let trace = busy_trace(120);
        let mut a = StreamingAnalysis::new("busy");
        for r in trace.records() {
            a.push(r);
        }
        let blob = a.save();
        assert!(StreamingAnalysis::load(&blob).is_ok());
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x40;
            assert!(StreamingAnalysis::load(&bad).is_err(), "flip at byte {i}");
        }
        for cut in 0..blob.len() {
            assert!(
                StreamingAnalysis::load(&blob[..cut]).is_err(),
                "truncated to {cut}"
            );
        }
    }

    #[test]
    fn sim_and_analysis_checkpoints_reject_each_other() {
        let analysis_blob = StreamingAnalysis::new("t").save();
        let err = bwsa_predictor::SimCheckpoint::from_bytes(&analysis_blob).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");

        let sim_blob = bwsa_predictor::SimCheckpoint {
            predictor: "bimodal/64".into(),
            trace: "t".into(),
            records_consumed: 0,
            mispredictions: 0,
            predictor_state: Vec::new(),
        }
        .to_bytes();
        let err = StreamingAnalysis::load(&sim_blob).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn save_is_deterministic() {
        let trace = busy_trace(250);
        let mut a = StreamingAnalysis::new("busy");
        let mut b = StreamingAnalysis::new("busy");
        for r in trace.records() {
            a.push(r);
            b.push(r);
        }
        assert_eq!(a.save(), b.save(), "same state must encode identically");
        let reloaded = StreamingAnalysis::load(&a.save()).unwrap();
        assert_eq!(reloaded.save(), a.save(), "load/save round-trips bytes");
    }
}
