//! Online **windowed analysis**: the whole-trace pipeline sliced into
//! reset intervals, with results that provably fold back into the exact
//! whole-trace answer.
//!
//! The paper aggregates interleaving over a whole trace, but its closing
//! question — are clustered mispredictions caused by working-set
//! *change*? — needs answers *during* the run. [`WindowedAnalysis`]
//! consumes a record stream and, at a configurable reset interval
//! ([`WindowUnit::DynamicBranches`] or [`WindowUnit::Instructions`]),
//! emits one [`WindowSummary`] per window: the window's own interleave
//! counts, conflict-graph delta, working sets, executed-set drift
//! (Jaccard similarity vs. the previous window) and a phase-change
//! signal.
//!
//! **Exactness.** Each window is summarised with the PR 2 merge algebra:
//! the window's records run through [`ShardDelta::of_shard`] seeded with
//! the [`ShardBoundary`] carry of everything before the window, and the
//! deltas merge associatively into the cumulative whole-trace state.
//! Because that algebra is exactly the one the parallel engine uses,
//! `fold(windows) == whole_trace` *bit-for-bit* — interleave counts,
//! graph edges, working sets, classification, and the final coloring all
//! match a from-scratch serial (or sharded) run. The property suite
//! `crates/core/tests/windowed_equiv.rs` pins this across arbitrary
//! traces, window sizes, and `--jobs` values.
//!
//! **Incremental re-coloring.** After each window merge the cumulative
//! thresholded graph is re-colored into the configured BHT only when it
//! actually changed: edge weights only ever grow, so an unchanged
//! `(nodes, kept edges, kept weight)` signature proves the pruned graph
//! is literally identical and the previous assignment is still *the*
//! coloring — the skip is exact, not approximate. Each re-coloring
//! reports a **stability** metric: the fraction of previously assigned
//! branches that kept their BHT entry.

use crate::conflict::ConflictAnalysis;
use crate::error::{CoreError, Error};
use crate::merge::{ShardBoundary, ShardDelta};
use crate::pipeline::{Analysis, AnalysisPipeline};
use crate::working_set::{working_sets, WorkingSetReport};
use bwsa_graph::coloring::{color_graph, ColoringOptions};
use bwsa_graph::ConflictGraph;
use bwsa_obs::json::Json;
use bwsa_obs::Obs;
use bwsa_trace::profile::BranchProfile;

/// Jaccard similarity below which a window is flagged as a phase change.
const PHASE_JACCARD: f64 = 0.5;

/// Default BHT size the incremental re-colorer targets (the paper's
/// conventional baseline table).
const DEFAULT_TABLE_SIZE: usize = 1024;

/// What a window's reset interval counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowUnit {
    /// Every N dynamic branch records start a new window.
    DynamicBranches,
    /// Fixed timestamp (instruction-count) intervals of width N, anchored
    /// at the first record's timestamp. Empty intervals emit no window.
    Instructions,
}

impl WindowUnit {
    /// Stable lower-case label (used in JSON and log lines).
    pub fn label(self) -> &'static str {
        match self {
            WindowUnit::DynamicBranches => "branches",
            WindowUnit::Instructions => "instructions",
        }
    }
}

/// Configuration of one windowed run: the reset interval, its unit, and
/// the BHT size the incremental re-colorer maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    interval: u64,
    unit: WindowUnit,
    table_size: usize,
}

impl WindowConfig {
    /// A window every `interval` dynamic branch records.
    ///
    /// # Errors
    ///
    /// [`Error::Core`] when `interval` is zero.
    pub fn branches(interval: u64) -> Result<Self, Error> {
        Self::with_unit(interval, WindowUnit::DynamicBranches)
    }

    /// A window every `interval` instruction timestamps.
    ///
    /// # Errors
    ///
    /// [`Error::Core`] when `interval` is zero.
    pub fn instructions(interval: u64) -> Result<Self, Error> {
        Self::with_unit(interval, WindowUnit::Instructions)
    }

    fn with_unit(interval: u64, unit: WindowUnit) -> Result<Self, Error> {
        if interval == 0 {
            return Err(CoreError::config("window interval must be at least 1").into());
        }
        Ok(WindowConfig {
            interval,
            unit,
            table_size: DEFAULT_TABLE_SIZE,
        })
    }

    /// Parses the CLI `--window` grammar: `"N"` for a dynamic-branch
    /// interval, `"Ni"` for an instruction-count interval.
    ///
    /// # Errors
    ///
    /// [`Error::Core`] for an empty, non-numeric, or zero interval.
    pub fn parse(spec: &str) -> Result<Self, Error> {
        let (digits, unit) = match spec.strip_suffix('i') {
            Some(rest) => (rest, WindowUnit::Instructions),
            None => (spec, WindowUnit::DynamicBranches),
        };
        let interval: u64 = digits.parse().map_err(|_| {
            Error::from(CoreError::config(format!(
                "bad window spec '{spec}': expected N (branches) or Ni (instructions)"
            )))
        })?;
        Self::with_unit(interval, unit)
    }

    /// Replaces the BHT size the re-colorer targets (default 1024).
    pub fn with_table_size(mut self, table_size: usize) -> Self {
        self.table_size = table_size;
        self
    }

    /// The reset interval.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// What the interval counts.
    pub fn unit(&self) -> WindowUnit {
        self.unit
    }

    /// The BHT size the incremental re-colorer maintains.
    pub fn table_size(&self) -> usize {
        self.table_size
    }
}

/// What the incremental re-colorer did after one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecolorStats {
    /// Whether the cumulative pruned graph changed and was re-colored
    /// (`false` = the unchanged-signature skip proved the previous
    /// assignment still exact).
    pub recolored: bool,
    /// Fraction of previously assigned branches keeping their BHT entry
    /// (1.0 on a skip or the first assignment).
    pub stability: f64,
}

/// One emitted window: the interval's own analysis products plus its
/// relation to the cumulative state.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// Zero-based window index.
    pub index: usize,
    /// Dynamic branch records in this window.
    pub records: u64,
    /// Timestamp of the window's first record.
    pub first_time: u64,
    /// Timestamp of the window's last record.
    pub last_time: u64,
    /// Branches executing for the first time in the whole run.
    pub new_branches: usize,
    /// Distinct branches executed in this window.
    pub executed_branches: usize,
    /// Interleave pairs detected within this window (the conflict-graph
    /// delta's edge count; edges here carry the exact seeded carry-in
    /// state, so deltas sum to the whole-trace graph).
    pub interleave_pairs: usize,
    /// Total interleave weight detected within this window.
    pub interleave_weight: u64,
    /// Edges of the *cumulative* thresholded graph after this window.
    pub cumulative_edges_kept: usize,
    /// Working sets of this window's own thresholded delta graph.
    pub working_sets: WorkingSetReport,
    /// Jaccard similarity of this window's executed set vs. the previous
    /// window's (1.0 for the first window).
    pub jaccard: f64,
    /// Whether the executed set drifted past the phase threshold.
    pub phase_change: bool,
    /// What the incremental re-colorer did after this window.
    pub recolor: RecolorStats,
}

impl WindowSummary {
    /// Canonical JSON rendering — the exact object `--emit-windows`
    /// writes and the server's window frames carry.
    pub fn to_json(&self) -> Json {
        let ws = &self.working_sets;
        Json::object([
            ("index", Json::UInt(self.index as u64)),
            ("records", Json::UInt(self.records)),
            ("first_time", Json::UInt(self.first_time)),
            ("last_time", Json::UInt(self.last_time)),
            ("new_branches", Json::UInt(self.new_branches as u64)),
            (
                "executed_branches",
                Json::UInt(self.executed_branches as u64),
            ),
            ("interleave_pairs", Json::UInt(self.interleave_pairs as u64)),
            ("interleave_weight", Json::UInt(self.interleave_weight)),
            (
                "cumulative_edges_kept",
                Json::UInt(self.cumulative_edges_kept as u64),
            ),
            (
                "working_sets",
                Json::object([
                    ("total_sets", Json::UInt(ws.total_sets as u64)),
                    ("max_size", Json::UInt(ws.max_size as u64)),
                    ("avg_static_size", Json::Float(ws.avg_static_size)),
                    ("avg_dynamic_size", Json::Float(ws.avg_dynamic_size)),
                ]),
            ),
            ("jaccard", Json::Float(self.jaccard)),
            ("phase_change", Json::Bool(self.phase_change)),
            (
                "recolor",
                Json::object([
                    ("recolored", Json::Bool(self.recolor.recolored)),
                    ("stability", Json::Float(self.recolor.stability)),
                ]),
            ),
        ])
    }
}

/// Signature-gated incremental re-coloring of the cumulative graph.
#[derive(Debug)]
struct Recolorer {
    table_size: usize,
    options: ColoringOptions,
    assignment: Vec<u32>,
    /// `(nodes, kept edges, kept weight)` of the last colored graph.
    /// Cumulative edge weights grow monotonically, so an unchanged
    /// signature proves the pruned graph is identical — the skip is
    /// exact.
    signature: Option<(usize, usize, u64)>,
    recolors: u64,
}

impl Recolorer {
    fn new(table_size: usize, options: ColoringOptions) -> Self {
        Recolorer {
            table_size,
            options,
            assignment: Vec::new(),
            signature: None,
            recolors: 0,
        }
    }

    fn observe(&mut self, pruned: &ConflictGraph) -> RecolorStats {
        let signature = (
            pruned.node_count(),
            pruned.edge_count(),
            pruned.total_weight(),
        );
        if self.signature == Some(signature) {
            return RecolorStats {
                recolored: false,
                stability: 1.0,
            };
        }
        let next = color_graph(pruned, self.table_size, &self.options).assignment;
        let kept = self
            .assignment
            .iter()
            .zip(&next)
            .filter(|(a, b)| a == b)
            .count();
        let stability = if self.assignment.is_empty() {
            1.0
        } else {
            kept as f64 / self.assignment.len() as f64
        };
        self.assignment = next;
        self.signature = Some(signature);
        self.recolors += 1;
        RecolorStats {
            recolored: true,
            stability,
        }
    }
}

/// Everything a finished windowed run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedResult {
    /// The configuration that produced this result.
    pub config: WindowConfig,
    /// Every emitted window, in order.
    pub windows: Vec<WindowSummary>,
    /// The folded whole-trace analysis — bit-identical to a from-scratch
    /// [`AnalysisPipeline`] run over the same records.
    pub analysis: Analysis,
    /// The final incremental BHT index map — identical to coloring the
    /// whole-trace thresholded graph from scratch.
    pub assignment: Vec<u32>,
    /// Times the re-colorer actually ran (vs. skipping unchanged graphs).
    pub recolors: u64,
    /// Mean re-coloring stability across windows (1.0 with no windows).
    pub mean_stability: f64,
    /// Windows flagged as phase changes.
    pub phase_changes: u64,
    /// Total dynamic records consumed.
    pub records: u64,
}

impl WindowedResult {
    /// Canonical JSON document for the whole run — the `--emit-windows`
    /// file body.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("window_interval", Json::UInt(self.config.interval())),
            ("window_unit", Json::from(self.config.unit().label())),
            ("table_size", Json::UInt(self.config.table_size() as u64)),
            ("records", Json::UInt(self.records)),
            (
                "windows",
                Json::Array(self.windows.iter().map(WindowSummary::to_json).collect()),
            ),
            ("recolors", Json::UInt(self.recolors)),
            ("mean_stability", Json::Float(self.mean_stability)),
            ("phase_changes", Json::UInt(self.phase_changes)),
            ("final", self.analysis.summary_json()),
        ])
    }
}

/// The online engine: push pre-interned records in trace order, read
/// emitted windows as they flush, and [`WindowedAnalysis::finish`] into
/// the exact whole-trace [`Analysis`].
///
/// # Example
///
/// ```
/// use bwsa_core::{AnalysisPipeline, Session, WindowConfig, WindowedAnalysis};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("demo");
/// for i in 0..600u64 {
///     b.record(0x400 + (i % 2) * 4, i % 4 < 2, i + 1);
/// }
/// let trace = b.finish();
///
/// let config = WindowConfig::branches(100).unwrap();
/// let mut engine = WindowedAnalysis::new(config, AnalysisPipeline::default());
/// for (id, r) in trace.indexed_records() {
///     engine.push(id.as_u32(), r.time.get(), r.is_taken());
/// }
/// let result = engine.finish();
/// assert_eq!(result.windows.len(), 6);
/// // Windows fold into the exact whole-trace answer.
/// assert_eq!(&result.analysis, Session::new(&trace).run().unwrap());
/// ```
#[derive(Debug)]
pub struct WindowedAnalysis {
    config: WindowConfig,
    pipeline: AnalysisPipeline,
    obs: Obs,
    /// Dense node-id space observed so far (max pushed id + 1).
    nodes: usize,
    /// Latest stamp per branch over everything before the open window.
    carry: ShardBoundary,
    /// The folded whole-trace state over all flushed windows.
    cumulative: ShardDelta,
    /// Records of the currently open window.
    buffer: Vec<(u32, u64, bool)>,
    /// Exclusive end of the open instruction window (instruction unit
    /// only; saturates at `u64::MAX`).
    window_end: Option<u64>,
    /// The previous window's executed set, for drift detection.
    prev_executed: Option<Vec<u32>>,
    recolorer: Recolorer,
    windows: Vec<WindowSummary>,
}

impl WindowedAnalysis {
    /// An engine with no records pushed yet.
    pub fn new(config: WindowConfig, pipeline: AnalysisPipeline) -> Self {
        WindowedAnalysis {
            recolorer: Recolorer::new(config.table_size, pipeline.allocation.coloring),
            config,
            pipeline,
            obs: Obs::noop(),
            nodes: 0,
            carry: ShardBoundary::empty(0),
            cumulative: ShardDelta::empty(0),
            buffer: Vec::new(),
            window_end: None,
            prev_executed: None,
            windows: Vec::new(),
        }
    }

    /// Attaches an observer for per-window counters and stage timings.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The configuration in effect.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Every window flushed so far.
    pub fn windows(&self) -> &[WindowSummary] {
        &self.windows
    }

    /// The current incremental BHT assignment (over the cumulative
    /// thresholded graph as of the last flushed window).
    pub fn assignment(&self) -> &[u32] {
        &self.recolorer.assignment
    }

    /// Consumes one pre-interned record in trace order, flushing a window
    /// when the reset interval fills.
    pub fn push(&mut self, id: u32, time: u64, taken: bool) {
        if self.config.unit == WindowUnit::Instructions {
            match self.window_end {
                None => {
                    // The first record anchors the interval grid.
                    self.window_end = Some(time.saturating_add(self.config.interval));
                }
                Some(mut end) if time >= end => {
                    self.flush();
                    while time >= end {
                        match end.checked_add(self.config.interval) {
                            Some(next) => end = next,
                            None => {
                                end = u64::MAX;
                                break;
                            }
                        }
                    }
                    self.window_end = Some(end);
                }
                Some(_) => {}
            }
        }
        self.nodes = self.nodes.max(id as usize + 1);
        self.buffer.push((id, time, taken));
        if self.config.unit == WindowUnit::DynamicBranches
            && self.buffer.len() as u64 >= self.config.interval
        {
            self.flush();
        }
    }

    /// Flushes the open window (no-op when it holds no records).
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        bwsa_resilience::failpoint!(crate::failpoints::WINDOW_FLUSH);
        let _span = self.obs.span("window_flush");
        let nodes = self.nodes;
        let delta = ShardDelta::of_shard(nodes, &self.carry, self.buffer.iter().copied());
        let boundary =
            ShardBoundary::of_records(nodes, self.buffer.iter().map(|&(id, t, _)| (id, t)));
        let first_time = self.buffer.first().map_or(0, |r| r.1);
        let last_time = self.buffer.last().map_or(0, |r| r.1);
        self.buffer.clear();

        let executed: Vec<u32> = delta
            .stats
            .iter()
            .enumerate()
            .filter(|(_, s)| s.executions > 0)
            .map(|(i, _)| i as u32)
            .collect();
        let new_branches = executed
            .iter()
            .filter(|&&id| {
                self.cumulative
                    .stats
                    .get(id as usize)
                    .is_none_or(|s| s.executions == 0)
            })
            .count();

        let window_graph = delta.builder.build();
        let pruned_window = window_graph.pruned(self.pipeline.conflict.threshold);
        let window_profile = BranchProfile::from_parts(delta.stats.clone(), delta.record_count());
        let window_sets = working_sets(&pruned_window, &window_profile, self.pipeline.definition);

        let jaccard = match &self.prev_executed {
            None => 1.0,
            Some(prev) => jaccard_sorted(prev, &executed),
        };
        let phase_change = self.prev_executed.is_some() && jaccard < PHASE_JACCARD;

        bwsa_resilience::failpoint!(crate::failpoints::WINDOW_MERGE);
        self.cumulative.merge(&delta);
        self.carry.join(&boundary);

        bwsa_resilience::failpoint!(crate::failpoints::RECOLOR);
        let (cumulative_kept, recolor) = {
            let _span = self.obs.span("recolor");
            let pruned = self
                .cumulative
                .builder
                .build()
                .pruned(self.pipeline.conflict.threshold);
            (pruned.edge_count(), self.recolorer.observe(&pruned))
        };

        self.obs.add("core.windows_flushed", 1);
        self.obs.add("core.window_records", delta.record_count());
        if recolor.recolored {
            self.obs.add("core.recolors", 1);
        }
        if phase_change {
            self.obs.add("core.phase_changes", 1);
        }

        self.windows.push(WindowSummary {
            index: self.windows.len(),
            records: delta.record_count(),
            first_time,
            last_time,
            new_branches,
            executed_branches: executed.len(),
            interleave_pairs: window_graph.edge_count(),
            interleave_weight: window_graph.total_weight(),
            cumulative_edges_kept: cumulative_kept,
            working_sets: window_sets.report,
            jaccard,
            phase_change,
            recolor,
        });
        self.prev_executed = Some(executed);
    }

    /// Flushes the trailing partial window and folds everything into the
    /// whole-trace [`Analysis`] — bit-identical to a from-scratch run
    /// over the same records (the associativity of the PR 2 merge
    /// algebra; pinned by `crates/core/tests/windowed_equiv.rs`).
    pub fn finish(mut self) -> WindowedResult {
        self.flush();
        let recolors = self.recolorer.recolors;
        let assignment = std::mem::take(&mut self.recolorer.assignment);
        let phase_changes = self.windows.iter().filter(|w| w.phase_change).count() as u64;
        let mean_stability = if self.windows.is_empty() {
            1.0
        } else {
            self.windows
                .iter()
                .map(|w| w.recolor.stability)
                .sum::<f64>()
                / self.windows.len() as f64
        };
        let ShardDelta {
            builder,
            stats,
            records,
        } = self.cumulative;
        let profile = BranchProfile::from_parts(stats, records);
        let conflict = ConflictAnalysis::of_raw_graph(builder.build(), self.pipeline.conflict);
        let working = working_sets(&conflict.graph, &profile, self.pipeline.definition);
        let classification = crate::classify::classify_with(
            &profile,
            self.pipeline.taken_threshold,
            self.pipeline.not_taken_threshold,
        );
        WindowedResult {
            config: self.config,
            windows: self.windows,
            analysis: Analysis {
                profile,
                conflict,
                working_sets: working,
                classification,
            },
            assignment,
            recolors,
            mean_stability,
            phase_changes,
            records,
        }
    }
}

/// Jaccard similarity of two ascending-sorted id sets.
fn jaccard_sorted(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut intersection = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                intersection += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - intersection;
    intersection as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use bwsa_trace::{Trace, TraceBuilder};

    fn ping_pong(n: u64) -> Trace {
        let mut b = TraceBuilder::new("pingpong");
        for i in 0..n {
            b.record(0x400 + (i % 2) * 4, i % 4 < 2, i + 1);
        }
        b.finish()
    }

    fn drive(trace: &Trace, config: WindowConfig) -> WindowedResult {
        let mut engine = WindowedAnalysis::new(config, AnalysisPipeline::default());
        for (id, r) in trace.indexed_records() {
            engine.push(id.as_u32(), r.time.get(), r.is_taken());
        }
        engine.finish()
    }

    #[test]
    fn config_rejects_zero_intervals() {
        assert!(WindowConfig::branches(0).is_err());
        assert!(WindowConfig::instructions(0).is_err());
        assert!(WindowConfig::parse("0").is_err());
        assert!(WindowConfig::parse("0i").is_err());
    }

    #[test]
    fn parse_grammar_covers_both_units() {
        let b = WindowConfig::parse("128").unwrap();
        assert_eq!(b.interval(), 128);
        assert_eq!(b.unit(), WindowUnit::DynamicBranches);
        let i = WindowConfig::parse("4096i").unwrap();
        assert_eq!(i.interval(), 4096);
        assert_eq!(i.unit(), WindowUnit::Instructions);
        for bad in ["", "i", "x", "12x", "-3", "1.5", "12ii"] {
            assert!(WindowConfig::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn branch_windows_fold_into_the_whole_trace_answer() {
        let trace = ping_pong(600);
        let whole = Session::new(&trace).run().unwrap().clone();
        for interval in [1, 7, 100, 600, 601, u64::MAX] {
            let result = drive(&trace, WindowConfig::branches(interval).unwrap());
            assert_eq!(result.analysis, whole, "interval {interval}");
            assert_eq!(result.records, 600);
            let records: u64 = result.windows.iter().map(|w| w.records).sum();
            assert_eq!(records, 600);
            let weight: u64 = result.windows.iter().map(|w| w.interleave_weight).sum();
            assert_eq!(
                weight, whole.conflict.raw_total_weight,
                "interval {interval}"
            );
        }
    }

    #[test]
    fn instruction_windows_partition_the_timestamp_axis() {
        let trace = ping_pong(400);
        let result = drive(&trace, WindowConfig::instructions(100).unwrap());
        // Timestamps 1..=400 anchored at 1: windows [1,101), [101,201), ...
        assert_eq!(result.windows.len(), 4);
        for w in &result.windows {
            assert_eq!(w.records, 100);
        }
        let whole = Session::new(&trace).run().unwrap().clone();
        assert_eq!(result.analysis, whole);
    }

    #[test]
    fn empty_input_yields_zero_windows_and_an_empty_analysis() {
        let trace = TraceBuilder::new("empty").finish();
        let result = drive(&trace, WindowConfig::branches(10).unwrap());
        assert!(result.windows.is_empty());
        assert_eq!(result.records, 0);
        assert_eq!(result.mean_stability, 1.0);
        assert!(result.assignment.is_empty());
        assert_eq!(result.analysis, *Session::new(&trace).run().unwrap());
    }

    #[test]
    fn final_assignment_matches_scratch_coloring() {
        let trace = ping_pong(800);
        let result = drive(
            &trace,
            WindowConfig::branches(64).unwrap().with_table_size(8),
        );
        let scratch = color_graph(
            &result.analysis.conflict.graph,
            8,
            &ColoringOptions::default(),
        );
        assert_eq!(result.assignment, scratch.assignment);
    }

    #[test]
    fn unchanged_graph_skips_recoloring_with_full_stability() {
        // One hot pair crosses the threshold early; the tail re-executes a
        // single known branch back-to-back, so it adds no nodes, no kept
        // edges, and no kept weight — the signature freezes and later
        // windows skip the exact re-coloring.
        let mut b = TraceBuilder::new("tail");
        let mut time = 0;
        for i in 0..600u64 {
            time += 1;
            b.record(0x400 + (i % 2) * 4, true, time);
        }
        for _ in 0..200u64 {
            time += 1;
            b.record(0x400, true, time);
        }
        let trace = b.finish();
        let result = drive(&trace, WindowConfig::branches(100).unwrap());
        let skipped = result.windows.iter().filter(|w| !w.recolor.recolored);
        assert!(skipped.count() > 0, "tail windows must skip re-coloring");
        assert!(result.recolors < result.windows.len() as u64);
        for w in &result.windows {
            assert!((0.0..=1.0).contains(&w.recolor.stability));
            if !w.recolor.recolored {
                assert_eq!(w.recolor.stability, 1.0);
            }
        }
    }

    #[test]
    fn phase_change_fires_when_the_executed_set_moves() {
        let mut b = TraceBuilder::new("phased");
        let mut time = 0;
        for i in 0..300u64 {
            time += 1;
            b.record(0x1000 + (i % 3) * 4, true, time);
        }
        for i in 0..300u64 {
            time += 1;
            b.record(0x2000 + (i % 3) * 4, false, time);
        }
        let trace = b.finish();
        let result = drive(&trace, WindowConfig::branches(100).unwrap());
        assert!(
            result.windows.iter().any(|w| w.phase_change),
            "disjoint second phase must be flagged"
        );
        assert_eq!(result.phase_changes, 1, "exactly one boundary crossed");
        let flagged = result.windows.iter().find(|w| w.phase_change).unwrap();
        assert_eq!(flagged.jaccard, 0.0);
        assert_eq!(flagged.new_branches, 3);
    }

    #[test]
    fn window_json_parses_and_carries_the_headline_fields() {
        let trace = ping_pong(300);
        let result = drive(&trace, WindowConfig::branches(150).unwrap());
        let doc = result.to_json();
        let text = doc.to_pretty_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("windows").map(|w| match w {
                Json::Array(items) => items.len(),
                _ => usize::MAX,
            }),
            Some(2)
        );
        assert_eq!(
            parsed.get("window_unit").and_then(Json::as_str),
            Some("branches")
        );
        let first = match parsed.get("windows") {
            Some(Json::Array(items)) => &items[0],
            other => panic!("windows not an array: {other:?}"),
        };
        assert_eq!(first.get("records").and_then(Json::as_u64), Some(150));
    }

    #[test]
    fn jaccard_similarity_is_exact_on_small_sets() {
        assert_eq!(jaccard_sorted(&[], &[]), 1.0);
        assert_eq!(jaccard_sorted(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard_sorted(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(jaccard_sorted(&[1, 2, 3], &[2, 3, 4]), 0.5);
    }
}
