//! Working sets over time: a windowed phase timeline.
//!
//! The main analysis (§4) aggregates interleaving over the whole run. This
//! module resolves the same notion *in time*: the trace is cut into
//! fixed-size windows of dynamic branches, each window's instantaneous
//! working set is the set of distinct static branches it executes, and a
//! **phase transition** is a window whose set departs sharply from its
//! predecessor's (low Jaccard similarity).
//!
//! This implements the measurement apparatus for the paper's closing
//! question — *"Are the clustered branch mispredictions ... caused by
//! changes in working set?"* — which the `future_work` bench binary
//! answers by correlating these transitions with
//! [`bwsa_predictor::clustering`] burst statistics.

use bwsa_trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Statistics of one timeline window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Index of the window's first dynamic branch in the trace.
    pub start_index: usize,
    /// Instruction-count timestamp of the window's first branch.
    pub start_time: u64,
    /// Distinct static branches executed in the window — the
    /// instantaneous working-set size.
    pub distinct_branches: usize,
    /// Branches in this window absent from the previous window.
    pub entered: usize,
    /// Jaccard similarity with the previous window's branch set (1.0 for
    /// the first window).
    pub jaccard_with_prev: f64,
}

/// A windowed working-set timeline of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimeline {
    /// Per-window statistics, in time order.
    pub windows: Vec<WindowStats>,
    /// Dynamic branches per window.
    pub window: usize,
}

impl PhaseTimeline {
    /// Cuts `trace` into windows of `window` dynamic branches (the
    /// trailing partial window is dropped) and computes each window's
    /// working-set statistics.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use bwsa_core::phases::PhaseTimeline;
    /// use bwsa_trace::TraceBuilder;
    ///
    /// // 100 executions of branch set {A,B}, then 100 of {C,D}.
    /// let mut b = TraceBuilder::new("p");
    /// for i in 0..100u64 {
    ///     b.record(0x100 + (i % 2) * 4, true, i + 1);
    /// }
    /// for i in 100..200u64 {
    ///     b.record(0x200 + (i % 2) * 4, true, i + 1);
    /// }
    /// let timeline = PhaseTimeline::of_trace(&b.finish(), 50);
    /// assert_eq!(timeline.transitions(0.5), vec![2], "sets swap at window 2");
    /// ```
    pub fn of_trace(trace: &Trace, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        let ids = trace.record_ids();
        let records = trace.records();
        let mut windows = Vec::with_capacity(ids.len() / window);
        let mut prev: HashSet<u32> = HashSet::new();
        let mut start = 0usize;
        while start + window <= ids.len() {
            let set: HashSet<u32> = ids[start..start + window]
                .iter()
                .map(|id| id.as_u32())
                .collect();
            let inter = set.intersection(&prev).count();
            let union = set.len() + prev.len() - inter;
            let jaccard = if start == 0 || union == 0 {
                1.0
            } else {
                inter as f64 / union as f64
            };
            windows.push(WindowStats {
                start_index: start,
                start_time: records[start].time.get(),
                distinct_branches: set.len(),
                entered: set.len() - inter,
                jaccard_with_prev: jaccard,
            });
            prev = set;
            start += window;
        }
        PhaseTimeline { windows, window }
    }

    /// Indices of windows whose Jaccard similarity with their predecessor
    /// falls below `threshold` — the phase transitions.
    pub fn transitions(&self, threshold: f64) -> Vec<usize> {
        self.windows
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, w)| w.jaccard_with_prev < threshold)
            .map(|(i, _)| i)
            .collect()
    }

    /// Mean instantaneous working-set size across windows.
    pub fn mean_working_set_size(&self) -> f64 {
        if self.windows.is_empty() {
            0.0
        } else {
            self.windows
                .iter()
                .map(|w| w.distinct_branches as f64)
                .sum::<f64>()
                / self.windows.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    /// `phases` blocks of `len` executions; block `p` uses branch set
    /// `{base_p + 0..k}`.
    fn phased(phases: usize, len: u64, k: u64) -> Trace {
        let mut b = TraceBuilder::new("p");
        let mut t = 0;
        for p in 0..phases as u64 {
            for i in 0..len {
                t += 1;
                b.record(0x1000 * (p + 1) + (i % k) * 4, true, t);
            }
        }
        b.finish()
    }

    #[test]
    fn stable_phase_has_high_similarity() {
        let trace = phased(1, 400, 4);
        let tl = PhaseTimeline::of_trace(&trace, 100);
        assert_eq!(tl.windows.len(), 4);
        for w in &tl.windows {
            assert_eq!(w.distinct_branches, 4);
            assert_eq!(w.jaccard_with_prev, 1.0);
        }
        assert!(tl.transitions(0.5).is_empty());
        assert_eq!(tl.mean_working_set_size(), 4.0);
    }

    #[test]
    fn phase_changes_are_detected_at_boundaries() {
        let trace = phased(3, 200, 4);
        let tl = PhaseTimeline::of_trace(&trace, 100);
        assert_eq!(tl.transitions(0.5), vec![2, 4]);
    }

    #[test]
    fn entered_counts_new_branches() {
        let trace = phased(2, 100, 4);
        let tl = PhaseTimeline::of_trace(&trace, 100);
        assert_eq!(tl.windows[0].entered, 4, "first window enters everything");
        assert_eq!(tl.windows[1].entered, 4, "full swap");
        assert_eq!(tl.windows[1].jaccard_with_prev, 0.0);
    }

    #[test]
    fn partial_trailing_window_is_dropped() {
        let trace = phased(1, 250, 2);
        let tl = PhaseTimeline::of_trace(&trace, 100);
        assert_eq!(tl.windows.len(), 2);
    }

    #[test]
    fn start_metadata_is_correct() {
        let trace = phased(1, 200, 2);
        let tl = PhaseTimeline::of_trace(&trace, 100);
        assert_eq!(tl.windows[0].start_index, 0);
        assert_eq!(tl.windows[1].start_index, 100);
        assert_eq!(tl.windows[1].start_time, 101);
    }

    #[test]
    fn empty_trace_yields_no_windows() {
        let tl = PhaseTimeline::of_trace(&Trace::new("e"), 10);
        assert!(tl.windows.is_empty());
        assert_eq!(tl.mean_working_set_size(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        PhaseTimeline::of_trace(&Trace::new("e"), 0);
    }
}
