//! Branch allocation: compiler-directed assignment of branches to BHT
//! entries (§5).
//!
//! Allocation colors the branch conflict graph "in much the same manner as
//! a graph coloring based register allocator specifies a register for each
//! variable", except that running out of entries *merges* rather than
//! spills: the branches with the fewest conflicts share an entry
//! (§5.1). With classification (§5.2), all highly biased branches share
//! two reserved entries — one per direction — and only the mixed branches
//! compete for the rest.
//!
//! The "BHT size required" experiments (Tables 3 and 4) ask for the
//! smallest table at which allocation's residual conflicts drop below a
//! conventional 1024-entry pc-indexed BHT's. Conflicts are quantified as
//! **conflict mass**: the total interleave weight carried by branch pairs
//! that share a table entry ([`conventional_conflict_mass`] for pc
//! indexing, [`Allocation::conflict_mass`] for allocation).

use crate::classify::{BiasClass, Classification};
use bwsa_graph::coloring::{color_graph, ColoringOptions};
use bwsa_graph::ConflictGraph;
use bwsa_predictor::AllocatedIndex;
use bwsa_trace::{BranchId, BranchTable};
use serde::{Deserialize, Serialize};

/// Options for the allocation routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AllocationConfig {
    /// Coloring heuristics (merge-candidate order).
    pub coloring: ColoringOptions,
}

/// A complete branch → BHT entry assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// The assignment, ready to drive a
    /// [`bwsa_predictor::BhtIndexer::Allocated`] PAg.
    pub index: AllocatedIndex,
    /// Residual conflict mass: interleave weight between distinct branches
    /// sharing an entry. Under classification, only conflicts the paper
    /// considers harmful are counted (same-biased-class sharing is free).
    pub conflict_mass: u64,
    /// Number of conflicting branch pairs contributing to the mass.
    pub conflicting_pairs: usize,
}

/// Entry-level occupancy view of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Entries holding at least one branch.
    pub used_entries: usize,
    /// Largest number of branches sharing one entry.
    pub max_per_entry: usize,
    /// Mean branches per *used* entry.
    pub mean_per_used_entry: f64,
}

impl Allocation {
    /// The BHT size this allocation targets.
    pub fn table_size(&self) -> usize {
        self.index.table_size()
    }

    /// Computes how branches spread across the table.
    ///
    /// # Example
    ///
    /// ```
    /// use bwsa_core::allocation::{allocate, AllocationConfig};
    /// use bwsa_graph::GraphBuilder;
    ///
    /// let mut b = GraphBuilder::new(4);
    /// b.add_edge(0, 1, 10).add_edge(2, 3, 10);
    /// let a = allocate(&b.build(), 4, &AllocationConfig::default());
    /// let occ = a.occupancy();
    /// assert_eq!(occ.used_entries, 4, "spreading uses the whole table");
    /// assert_eq!(occ.max_per_entry, 1);
    /// ```
    pub fn occupancy(&self) -> Occupancy {
        let mut counts = vec![0usize; self.index.table_size()];
        for (_, entry) in self.index.iter() {
            counts[entry as usize] += 1;
        }
        let used: Vec<usize> = counts.into_iter().filter(|&c| c > 0).collect();
        let total: usize = used.iter().sum();
        Occupancy {
            used_entries: used.len(),
            max_per_entry: used.iter().copied().max().unwrap_or(0),
            mean_per_used_entry: if used.is_empty() {
                0.0
            } else {
                total as f64 / used.len() as f64
            },
        }
    }
}

/// Allocates every branch of `graph` into a `table_size`-entry BHT by
/// graph coloring (§5.1, no classification).
///
/// # Panics
///
/// Panics if `table_size` is zero while the graph has nodes.
pub fn allocate(graph: &ConflictGraph, table_size: usize, config: &AllocationConfig) -> Allocation {
    let coloring = color_graph(graph, table_size, &config.coloring);
    let entries = coloring.assignment.iter().map(|&c| Some(c)).collect();
    Allocation {
        index: AllocatedIndex::new(table_size, entries).expect("colors are in range"),
        conflict_mass: coloring.conflict_mass,
        conflicting_pairs: coloring.conflicting_edges,
    }
}

/// Allocates with branch classification (§5.2): biased-taken branches all
/// share entry 0, biased-not-taken branches entry 1, and the mixed
/// branches are colored into the remaining `table_size − 2` entries over
/// the classification-refined graph.
///
/// # Panics
///
/// Panics if `table_size < 3` or the classification does not match the
/// graph's node count.
pub fn allocate_classified(
    graph: &ConflictGraph,
    classification: &Classification,
    table_size: usize,
    config: &AllocationConfig,
) -> Allocation {
    assert!(
        table_size >= 3,
        "classified allocation needs 2 reserved entries plus at least 1"
    );
    let refined = classification.refine_graph(graph);
    let mixed_only =
        refined.induced(|n| classification.class(BranchId::new(n)) == BiasClass::Mixed);
    let coloring = color_graph(&mixed_only, table_size - 2, &config.coloring);
    let entries = (0..graph.node_count())
        .map(|i| {
            Some(match classification.class(BranchId::new(i as u32)) {
                BiasClass::BiasedTaken => 0,
                BiasClass::BiasedNotTaken => 1,
                BiasClass::Mixed => coloring.assignment[i] + 2,
            })
        })
        .collect();
    Allocation {
        index: AllocatedIndex::new(table_size, entries).expect("entries in range"),
        conflict_mass: coloring.conflict_mass,
        conflicting_pairs: coloring.conflicting_edges,
    }
}

/// Conflict mass of conventional pc-modulo indexing: total interleave
/// weight of branch pairs whose pcs map to the same entry of a
/// `table_size`-entry BHT.
///
/// # Panics
///
/// Panics if the graph has more nodes than `table` has interned branches,
/// or `table_size` is zero.
pub fn conventional_conflict_mass(
    graph: &ConflictGraph,
    table: &BranchTable,
    table_size: usize,
) -> u64 {
    assert!(
        graph.node_count() <= table.len(),
        "graph nodes must be interned branches"
    );
    graph
        .iter_edges()
        .filter(|&(a, b, _)| {
            table.pc_of(BranchId::new(a)).table_index(table_size)
                == table.pc_of(BranchId::new(b)).table_index(table_size)
        })
        .map(|(_, _, w)| w)
        .sum()
}

/// Result of a required-size search (one Table 3 / Table 4 cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequiredSize {
    /// Smallest table size whose allocation mass is at or below the target.
    pub size: usize,
    /// The conventional baseline's conflict mass (the bar to clear).
    pub target_mass: u64,
    /// The allocation's mass at `size`.
    pub achieved_mass: u64,
}

fn search_required(
    min_size: usize,
    max_size: usize,
    target_mass: u64,
    mut mass_at: impl FnMut(usize) -> u64,
) -> RequiredSize {
    // Exponential probe upward, then binary search. Coloring mass is not
    // perfectly monotone in the table size, so the found boundary is
    // verified and nudged if needed.
    let mut lo = min_size; // invariant: mass(lo) may exceed target
    if mass_at(lo) <= target_mass {
        return RequiredSize {
            size: lo,
            target_mass,
            achieved_mass: mass_at(lo),
        };
    }
    let mut hi = (lo * 2).max(lo + 1);
    while hi < max_size && mass_at(hi) > target_mass {
        lo = hi;
        hi *= 2;
    }
    let mut hi = hi.min(max_size);
    // Binary search on the predicate mass(k) <= target.
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if mass_at(mid) <= target_mass {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    RequiredSize {
        size: hi,
        target_mass,
        achieved_mass: mass_at(hi),
    }
}

/// Finds the smallest BHT size at which plain branch allocation's conflict
/// mass drops to (or below) that of a conventional `baseline_size`-entry
/// pc-indexed BHT — one Table 3 row.
///
/// # Panics
///
/// Panics if the graph is empty of nodes or `baseline_size` is zero.
pub fn required_bht_size(
    graph: &ConflictGraph,
    table: &BranchTable,
    baseline_size: usize,
    config: &AllocationConfig,
) -> RequiredSize {
    let target = conventional_conflict_mass(graph, table, baseline_size);
    let n = graph.node_count().max(1);
    search_required(1, n + 1, target, |k| {
        allocate(graph, k, config).conflict_mass
    })
}

/// Finds the smallest BHT size for *classified* allocation (two reserved
/// biased entries) to beat the conventional baseline — one Table 4 row.
///
/// The baseline's mass is measured on the classification-refined graph:
/// conflicts between two same-class biased branches are harmless no
/// matter which scheme maps them together, so they are not counted on
/// either side of the comparison.
///
/// # Panics
///
/// Panics if the classification does not match the graph or
/// `baseline_size` is zero.
pub fn required_bht_size_classified(
    graph: &ConflictGraph,
    classification: &Classification,
    table: &BranchTable,
    baseline_size: usize,
    config: &AllocationConfig,
) -> RequiredSize {
    let refined = classification.refine_graph(graph);
    let target = conventional_conflict_mass(&refined, table, baseline_size);
    let n = graph.node_count().max(1);
    search_required(3, n + 3, target, |k| {
        allocate_classified(graph, classification, k, config).conflict_mass
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use bwsa_graph::GraphBuilder;
    use bwsa_trace::{profile::BranchProfile, TraceBuilder};

    /// A clique of `n` branches with unit-spaced pcs starting at 0x1000.
    fn clique_graph(n: u32, w: u64) -> (ConflictGraph, BranchTable) {
        let mut b = GraphBuilder::new(n);
        let mut table = BranchTable::new();
        for i in 0..n {
            table.intern(bwsa_trace::Pc::new(0x1000 + u64::from(i) * 4));
            for j in (i + 1)..n {
                b.add_edge(i, j, w);
            }
        }
        (b.build(), table)
    }

    #[test]
    fn allocation_with_enough_entries_is_conflict_free() {
        let (g, _) = clique_graph(6, 500);
        let a = allocate(&g, 6, &AllocationConfig::default());
        assert_eq!(a.conflict_mass, 0);
        assert_eq!(a.table_size(), 6);
        assert_eq!(a.index.assigned_count(), 6);
    }

    #[test]
    fn allocation_mass_matches_shared_pairs() {
        let (g, _) = clique_graph(4, 10);
        let a = allocate(&g, 2, &AllocationConfig::default());
        // 4 branches in 2 entries: 2 pairs share → mass 20.
        assert_eq!(a.conflict_mass, 20);
        assert_eq!(a.conflicting_pairs, 2);
    }

    #[test]
    fn conventional_mass_counts_pc_collisions() {
        let (g, table) = clique_graph(4, 10);
        // Table size 2: pcs 0x400,0x401,0x402,0x403 (word) → entries
        // 0,1,0,1 → pairs (0,2) and (1,3) collide.
        assert_eq!(conventional_conflict_mass(&g, &table, 2), 20);
        // Size 4: all distinct.
        assert_eq!(conventional_conflict_mass(&g, &table, 4), 0);
        // Size 1: all 6 pairs collide.
        assert_eq!(conventional_conflict_mass(&g, &table, 1), 60);
    }

    #[test]
    fn required_size_beats_a_colliding_baseline() {
        let (g, table) = clique_graph(8, 100);
        // Baseline of size 4 collides pairs; allocation should need <= 8
        // and more than 1 entry.
        let r = required_bht_size(&g, &table, 4, &AllocationConfig::default());
        assert!(r.size <= 8);
        assert!(r.size > 1);
        assert!(r.achieved_mass <= r.target_mass);
    }

    #[test]
    fn required_size_is_one_when_baseline_is_total() {
        // Baseline size 1 collides everything: any allocation ties it.
        let (g, table) = clique_graph(5, 7);
        let r = required_bht_size(&g, &table, 1, &AllocationConfig::default());
        assert_eq!(r.size, 1);
        assert_eq!(r.achieved_mass, r.target_mass);
    }

    #[test]
    fn zero_target_requires_proper_coloring() {
        let (g, table) = clique_graph(5, 7);
        // Baseline 1024: no collisions → target 0 → need 5 colors.
        let r = required_bht_size(&g, &table, 1024, &AllocationConfig::default());
        assert_eq!(r.size, 5);
        assert_eq!(r.achieved_mass, 0);
    }

    /// A trace with 2 biased-taken, 2 biased-not-taken, and 3 mixed
    /// branches, all interleaving heavily.
    fn classified_fixture() -> (ConflictGraph, Classification, BranchTable) {
        let mut t = TraceBuilder::new("c");
        let mut time = 0;
        for round in 0..400u64 {
            for (i, taken) in [
                (0u64, true),
                (1, true),
                (2, false),
                (3, false),
                (4, round % 2 == 0),
                (5, round % 3 == 0),
                (6, round % 5 == 0),
            ] {
                time += 1;
                t.record(0x1000 + i * 4, taken, time);
            }
        }
        let trace = t.finish();
        let graph = crate::interleave_counts(&trace).build().pruned(100);
        let profile = BranchProfile::from_trace(&trace);
        let classification = classify(&profile);
        (graph, classification, trace.table().clone())
    }

    #[test]
    fn classified_allocation_reserves_two_entries() {
        let (g, c, _) = classified_fixture();
        assert_eq!(c.counts(), (2, 2, 3));
        let a = allocate_classified(&g, &c, 5, &AllocationConfig::default());
        assert_eq!(a.index.entry(BranchId::new(0)), Some(0));
        assert_eq!(a.index.entry(BranchId::new(1)), Some(0));
        assert_eq!(a.index.entry(BranchId::new(2)), Some(1));
        assert_eq!(a.index.entry(BranchId::new(3)), Some(1));
        for i in 4..7 {
            assert!(a.index.entry(BranchId::new(i)).unwrap() >= 2);
        }
        // 3 mixed branches in 3 free entries: zero counted mass.
        assert_eq!(a.conflict_mass, 0);
    }

    #[test]
    fn classification_shrinks_required_size() {
        let (g, c, table) = classified_fixture();
        // Baseline 2 entries: plenty of collisions among the 7 branches.
        let plain = required_bht_size(&g, &table, 2, &AllocationConfig::default());
        let classified =
            required_bht_size_classified(&g, &c, &table, 2, &AllocationConfig::default());
        // The reserved entries impose a floor of 3 on the classified size.
        assert!(
            classified.size <= plain.size.max(3),
            "classified {} vs plain {}",
            classified.size,
            plain.size
        );
    }

    #[test]
    fn classified_allocation_ignores_same_class_conflicts() {
        let (g, c, _) = classified_fixture();
        // Even with the minimum 3 entries (all mixed branches share one),
        // the mass counts only mixed-mixed sharing.
        let a = allocate_classified(&g, &c, 3, &AllocationConfig::default());
        let mixed_edges: u64 = g
            .iter_edges()
            .filter(|&(x, y, _)| {
                c.class(BranchId::new(x)) == BiasClass::Mixed
                    && c.class(BranchId::new(y)) == BiasClass::Mixed
            })
            .map(|(_, _, w)| w)
            .sum();
        assert_eq!(a.conflict_mass, mixed_edges);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn classified_allocation_needs_three_entries() {
        let (g, c, _) = classified_fixture();
        allocate_classified(&g, &c, 2, &AllocationConfig::default());
    }

    #[test]
    fn occupancy_reports_sharing() {
        let (g, _) = clique_graph(6, 5);
        let tight = allocate(&g, 2, &AllocationConfig::default());
        let occ = tight.occupancy();
        assert_eq!(occ.used_entries, 2);
        assert_eq!(occ.max_per_entry, 3);
        assert!((occ.mean_per_used_entry - 3.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_of_classified_reserves_biased_entries() {
        let (g, c, _) = classified_fixture();
        let a = allocate_classified(&g, &c, 16, &AllocationConfig::default());
        let occ = a.occupancy();
        // Entries 0 and 1 hold 2 branches each; 3 mixed spread out.
        assert_eq!(occ.max_per_entry, 2);
        assert_eq!(occ.used_entries, 5);
    }
}
