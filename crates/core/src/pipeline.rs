//! One-call orchestration of the full analysis.

use crate::allocation::{
    allocate, allocate_classified, required_bht_size, required_bht_size_classified, Allocation,
    AllocationConfig, RequiredSize,
};
use crate::classify::{classify_with, Classification};
use crate::conflict::{ConflictAnalysis, ConflictConfig};
use crate::working_set::{working_sets, WorkingSetDefinition, WorkingSets};
use bwsa_trace::{profile::BranchProfile, Trace};
use serde::{Deserialize, Serialize};

/// Configuration of the end-to-end analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisPipeline {
    /// Conflict-graph thresholding (§4.2; default 100).
    pub conflict: ConflictConfig,
    /// Working-set extraction method (§4.1 step 3).
    pub definition: WorkingSetDefinition,
    /// Classification thresholds (§5.2; defaults 0.99 / 0.01).
    pub taken_threshold: f64,
    /// See [`AnalysisPipeline::taken_threshold`].
    pub not_taken_threshold: f64,
    /// Allocation options (§5.1).
    pub allocation: AllocationConfig,
}

impl Default for AnalysisPipeline {
    fn default() -> Self {
        AnalysisPipeline {
            conflict: ConflictConfig::default(),
            definition: WorkingSetDefinition::Partition,
            taken_threshold: 0.99,
            not_taken_threshold: 0.01,
            allocation: AllocationConfig::default(),
        }
    }
}

/// Everything the paper computes about one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Analysis {
    /// Per-branch execution statistics.
    pub profile: BranchProfile,
    /// Steps 1–2: thresholded conflict graph.
    pub conflict: ConflictAnalysis,
    /// Step 3: working sets and the Table 2 statistics.
    pub working_sets: WorkingSets,
    /// §5.2 bias classes.
    pub classification: Classification,
}

impl AnalysisPipeline {
    /// The paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs steps 1–3 plus classification on a trace.
    ///
    /// # Example
    ///
    /// ```
    /// use bwsa_core::pipeline::AnalysisPipeline;
    /// use bwsa_trace::TraceBuilder;
    ///
    /// let mut t = TraceBuilder::new("demo");
    /// for i in 0..1000u64 {
    ///     t.record(0x100 + (i % 3) * 4, i % 2 == 0, i + 1);
    /// }
    /// let analysis = AnalysisPipeline::new().run(&t.finish());
    /// assert_eq!(analysis.working_sets.report.total_sets, 1);
    /// assert_eq!(analysis.working_sets.report.max_size, 3);
    /// ```
    pub fn run(&self, trace: &Trace) -> Analysis {
        let profile = BranchProfile::from_trace(trace);
        let conflict = ConflictAnalysis::of_trace(trace, self.conflict);
        let working = working_sets(&conflict.graph, &profile, self.definition);
        let classification =
            classify_with(&profile, self.taken_threshold, self.not_taken_threshold);
        Analysis {
            profile,
            conflict,
            working_sets: working,
            classification,
        }
    }

    /// Runs the pipeline with the trace sharded across worker threads.
    ///
    /// The result is bit-identical to [`AnalysisPipeline::run`] for every
    /// worker and shard count; see [`crate::parallel`] for the two-pass
    /// scheme that makes that hold.
    ///
    /// # Example
    ///
    /// ```
    /// use bwsa_core::pipeline::AnalysisPipeline;
    /// use bwsa_core::ParallelConfig;
    /// use bwsa_trace::TraceBuilder;
    ///
    /// let mut t = TraceBuilder::new("demo");
    /// for i in 0..1000u64 {
    ///     t.record(0x100 + (i % 3) * 4, i % 2 == 0, i + 1);
    /// }
    /// let trace = t.finish();
    /// let pipeline = AnalysisPipeline::new();
    /// let parallel = pipeline.run_parallel(&trace, &ParallelConfig::with_jobs(2));
    /// assert_eq!(parallel, pipeline.run(&trace));
    /// ```
    pub fn run_parallel(&self, trace: &Trace, config: &crate::ParallelConfig) -> Analysis {
        crate::parallel::analyze_parallel(self, trace, config)
    }
}

impl Analysis {
    /// Branch allocation into a `table_size`-entry BHT (§5.1).
    pub fn allocate(&self, table_size: usize, config: &AllocationConfig) -> Allocation {
        allocate(&self.conflict.graph, table_size, config)
    }

    /// Classified branch allocation (§5.2).
    ///
    /// # Panics
    ///
    /// Panics if `table_size < 3`.
    pub fn allocate_classified(&self, table_size: usize, config: &AllocationConfig) -> Allocation {
        allocate_classified(
            &self.conflict.graph,
            &self.classification,
            table_size,
            config,
        )
    }

    /// The Table 3 cell: minimum BHT size for plain allocation to beat a
    /// conventional `baseline`-entry table, for the trace this analysis
    /// was computed from.
    pub fn required_bht_size(
        &self,
        trace: &Trace,
        baseline: usize,
        config: &AllocationConfig,
    ) -> RequiredSize {
        required_bht_size(&self.conflict.graph, trace.table(), baseline, config)
    }

    /// The Table 4 cell: minimum BHT size for classified allocation.
    pub fn required_bht_size_classified(
        &self,
        trace: &Trace,
        baseline: usize,
        config: &AllocationConfig,
    ) -> RequiredSize {
        required_bht_size_classified(
            &self.conflict.graph,
            &self.classification,
            trace.table(),
            baseline,
            config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    /// Two phases of three branches each, revisited enough that intra-phase
    /// edges clear the threshold but cross-phase edges do not.
    fn phased_trace() -> Trace {
        let mut t = TraceBuilder::new("phased");
        let mut time = 0;
        for phase_round in 0..6 {
            for phase in 0..2u64 {
                if phase_round >= 3 && phase == 1 {
                    continue; // phase 1 visited less
                }
                for _ in 0..60 {
                    for b in 0..3u64 {
                        time += 1;
                        t.record(0x1000 * (phase + 1) + b * 4, (time % 3) != 0, time);
                    }
                }
            }
        }
        t.finish()
    }

    #[test]
    fn pipeline_finds_the_phase_structure() {
        let analysis = AnalysisPipeline::new().run(&phased_trace());
        assert_eq!(analysis.working_sets.report.total_sets, 2);
        assert_eq!(analysis.working_sets.report.max_size, 3);
        assert_eq!(analysis.profile.static_count(), 6);
    }

    #[test]
    fn allocation_methods_agree_with_direct_calls() {
        let trace = phased_trace();
        let analysis = AnalysisPipeline::new().run(&trace);
        let cfg = AllocationConfig::default();
        let a = analysis.allocate(4, &cfg);
        let direct = crate::allocation::allocate(&analysis.conflict.graph, 4, &cfg);
        assert_eq!(a, direct);
        let r = analysis.required_bht_size(&trace, 1024, &cfg);
        assert!(r.size <= 6);
    }

    #[test]
    fn classified_required_size_not_larger() {
        let trace = phased_trace();
        let analysis = AnalysisPipeline::new().run(&trace);
        let cfg = AllocationConfig::default();
        let plain = analysis.required_bht_size(&trace, 2, &cfg);
        let classified = analysis.required_bht_size_classified(&trace, 2, &cfg);
        // Classified needs at least 3 (reserved), but never more than
        // plain + 2.
        assert!(classified.size <= plain.size + 2);
    }

    #[test]
    fn default_config_matches_paper() {
        let p = AnalysisPipeline::new();
        assert_eq!(p.conflict.threshold, 100);
        assert_eq!(p.taken_threshold, 0.99);
        assert_eq!(p.not_taken_threshold, 0.01);
    }
}
