//! One-call orchestration of the full analysis.
//!
//! [`Session`](crate::Session) is the preferred entry point; the methods
//! here are the engine it drives. The instrumented variants
//! ([`AnalysisPipeline::run_observed`]) thread an [`Obs`] handle through
//! every stage; with the default no-op handle they are free and the
//! results are bit-identical either way (checked by
//! `crates/core/tests/observed_equivalence.rs`).

use crate::allocation::{
    allocate, allocate_classified, required_bht_size, required_bht_size_classified, Allocation,
    AllocationConfig, RequiredSize,
};
use crate::classify::{classify_with, Classification};
use crate::conflict::{ConflictAnalysis, ConflictConfig};
use crate::error::Error;
use crate::session::Classified;
use crate::working_set::{working_sets, WorkingSetDefinition, WorkingSets};
use crate::CoreError;
use bwsa_obs::Obs;
use bwsa_trace::{profile::BranchProfile, Trace};
use serde::{Deserialize, Serialize};

/// Configuration of the end-to-end analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisPipeline {
    /// Conflict-graph thresholding (§4.2; default 100).
    pub conflict: ConflictConfig,
    /// Working-set extraction method (§4.1 step 3).
    pub definition: WorkingSetDefinition,
    /// Classification thresholds (§5.2; defaults 0.99 / 0.01).
    pub taken_threshold: f64,
    /// See [`AnalysisPipeline::taken_threshold`].
    pub not_taken_threshold: f64,
    /// Allocation options (§5.1).
    pub allocation: AllocationConfig,
}

impl Default for AnalysisPipeline {
    fn default() -> Self {
        AnalysisPipeline {
            conflict: ConflictConfig::default(),
            definition: WorkingSetDefinition::Partition,
            taken_threshold: 0.99,
            not_taken_threshold: 0.01,
            allocation: AllocationConfig::default(),
        }
    }
}

/// Everything the paper computes about one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Analysis {
    /// Per-branch execution statistics.
    pub profile: BranchProfile,
    /// Steps 1–2: thresholded conflict graph.
    pub conflict: ConflictAnalysis,
    /// Step 3: working sets and the Table 2 statistics.
    pub working_sets: WorkingSets,
    /// §5.2 bias classes.
    pub classification: Classification,
}

impl AnalysisPipeline {
    /// The paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks that every configured value is usable: thresholds in
    /// `[0, 1]` with `not_taken ≤ taken`, and a nonzero conflict
    /// threshold.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first bad
    /// field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.conflict.threshold == 0 {
            return Err(CoreError::config("conflict threshold must be at least 1"));
        }
        for (name, v) in [
            ("taken_threshold", self.taken_threshold),
            ("not_taken_threshold", self.not_taken_threshold),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(CoreError::config(format!("{name} {v} outside [0, 1]")));
            }
        }
        if self.not_taken_threshold > self.taken_threshold {
            return Err(CoreError::config(format!(
                "not_taken_threshold {} exceeds taken_threshold {}",
                self.not_taken_threshold, self.taken_threshold
            )));
        }
        Ok(())
    }

    /// Runs steps 1–3 plus classification on a trace, reporting stage
    /// timings and counters into `obs`.
    ///
    /// With [`Obs::noop`] this is exactly the uninstrumented pipeline;
    /// the result is bit-identical whether or not `obs` records.
    ///
    /// # Example
    ///
    /// ```
    /// use bwsa_core::pipeline::AnalysisPipeline;
    /// use bwsa_obs::Obs;
    /// use bwsa_trace::TraceBuilder;
    ///
    /// let mut t = TraceBuilder::new("demo");
    /// for i in 0..1000u64 {
    ///     t.record(0x100 + (i % 3) * 4, i % 2 == 0, i + 1);
    /// }
    /// let obs = Obs::recording();
    /// let analysis = AnalysisPipeline::new().run_observed(&t.finish(), &obs);
    /// assert_eq!(analysis.working_sets.report.total_sets, 1);
    /// assert_eq!(analysis.working_sets.report.max_size, 3);
    /// let metrics = obs.snapshot().unwrap();
    /// assert!(metrics.stage("interleave").is_some());
    /// assert!(metrics.counter("core.interleave_pairs") > 0);
    /// ```
    pub fn run_observed(&self, trace: &Trace, obs: &Obs) -> Analysis {
        let profile = {
            let _span = obs.span("profile");
            bwsa_resilience::failpoint!("core.profile");
            BranchProfile::from_trace(trace)
        };
        let raw = {
            let _span = obs.span("interleave");
            bwsa_resilience::failpoint!("core.interleave");
            crate::interleave_counts(trace).build()
        };
        obs.add("core.interleave_pairs", raw.edge_count() as u64);
        obs.add("core.interleave_weight", raw.total_weight());
        let conflict = {
            let _span = obs.span("conflict_prune");
            bwsa_resilience::failpoint!("core.conflict_prune");
            ConflictAnalysis::of_raw_graph(raw, self.conflict)
        };
        obs.add("core.graph_edges_raw", conflict.raw_edge_count as u64);
        obs.add("core.graph_edges_kept", conflict.graph.edge_count() as u64);
        let working = {
            let _span = obs.span("working_sets");
            bwsa_resilience::failpoint!("core.working_sets");
            working_sets(&conflict.graph, &profile, self.definition)
        };
        let classification = {
            let _span = obs.span("classify");
            bwsa_resilience::failpoint!("core.classify");
            classify_with(&profile, self.taken_threshold, self.not_taken_threshold)
        };
        obs.sample_peak_rss();
        Analysis {
            profile,
            conflict,
            working_sets: working,
            classification,
        }
    }
}

impl Analysis {
    /// The analysis products as an ordered JSON object: the Table 2
    /// working-set report, classification counts, and conflict-graph
    /// shape.
    ///
    /// This is the **one canonical rendering** shared by every remote
    /// consumer — the `bwsa-server` analyze response builds exactly this
    /// object, so a served result can be compared byte-for-byte against
    /// a local [`Session`](crate::Session) run of the same trace.
    pub fn summary_json(&self) -> bwsa_obs::json::Json {
        use bwsa_obs::json::Json;
        let r = &self.working_sets.report;
        let (taken, not_taken, mixed) = self.classification.counts();
        Json::object([
            (
                "working_sets",
                Json::object([
                    ("total_sets", Json::UInt(r.total_sets as u64)),
                    ("max_size", Json::UInt(r.max_size as u64)),
                    ("avg_static_size", Json::Float(r.avg_static_size)),
                    ("avg_dynamic_size", Json::Float(r.avg_dynamic_size)),
                ]),
            ),
            (
                "classification",
                Json::object([
                    ("biased_taken", Json::UInt(taken as u64)),
                    ("biased_not_taken", Json::UInt(not_taken as u64)),
                    ("mixed", Json::UInt(mixed as u64)),
                ]),
            ),
            (
                "conflict_graph",
                Json::object([
                    (
                        "edges_kept",
                        Json::UInt(self.conflict.graph.edge_count() as u64),
                    ),
                    ("raw_edges", Json::UInt(self.conflict.raw_edge_count as u64)),
                    ("nodes", Json::UInt(self.conflict.graph.node_count() as u64)),
                ]),
            ),
        ])
    }

    /// Branch allocation into a `table_size`-entry BHT, plain (§5.1) or
    /// classified (§5.2) according to `classified`.
    ///
    /// This is the single allocation entry point (the pre-0.9 shim pair
    /// is gone); bad table sizes are errors, not panics.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Core`] when `table_size` is zero, or below the 3
    /// entries classified allocation needs (two reserved biased entries
    /// plus at least one for the mixed branches).
    pub fn allocation(
        &self,
        classified: Classified,
        table_size: usize,
        config: &AllocationConfig,
    ) -> Result<Allocation, Error> {
        if classified.0 {
            if table_size < 3 {
                return Err(CoreError::config(format!(
                    "classified allocation needs a table of at least 3 entries, got {table_size}"
                ))
                .into());
            }
            Ok(allocate_classified(
                &self.conflict.graph,
                &self.classification,
                table_size,
                config,
            ))
        } else {
            if table_size == 0 && self.conflict.graph.node_count() > 0 {
                return Err(
                    CoreError::config("cannot allocate branches into a zero-entry table").into(),
                );
            }
            Ok(allocate(&self.conflict.graph, table_size, config))
        }
    }

    /// The Table 3 / Table 4 cell: minimum BHT size for (plain or
    /// classified) allocation to beat a conventional `baseline`-entry
    /// table, for the trace this analysis was computed from.
    ///
    /// This is the single required-size entry point (the pre-0.9 shim
    /// pair is gone); a zero baseline is an error, not a panic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Core`] when `baseline` is zero.
    pub fn required_size(
        &self,
        classified: Classified,
        trace: &Trace,
        baseline: usize,
        config: &AllocationConfig,
    ) -> Result<RequiredSize, Error> {
        if baseline == 0 {
            return Err(
                CoreError::config("required-size search needs a nonzero baseline table").into(),
            );
        }
        Ok(if classified.0 {
            required_bht_size_classified(
                &self.conflict.graph,
                &self.classification,
                trace.table(),
                baseline,
                config,
            )
        } else {
            required_bht_size(&self.conflict.graph, trace.table(), baseline, config)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    /// Two phases of three branches each, revisited enough that intra-phase
    /// edges clear the threshold but cross-phase edges do not.
    fn phased_trace() -> Trace {
        let mut t = TraceBuilder::new("phased");
        let mut time = 0;
        for phase_round in 0..6 {
            for phase in 0..2u64 {
                if phase_round >= 3 && phase == 1 {
                    continue; // phase 1 visited less
                }
                for _ in 0..60 {
                    for b in 0..3u64 {
                        time += 1;
                        t.record(0x1000 * (phase + 1) + b * 4, (time % 3) != 0, time);
                    }
                }
            }
        }
        t.finish()
    }

    #[test]
    fn summary_json_is_stable_and_parses() {
        let analysis = AnalysisPipeline::new().run_observed(&phased_trace(), &Obs::noop());
        let doc = analysis.summary_json();
        let ws = doc.get("working_sets").unwrap();
        assert_eq!(
            ws.get("total_sets").and_then(bwsa_obs::json::Json::as_u64),
            Some(analysis.working_sets.report.total_sets as u64)
        );
        let (t, n, m) = analysis.classification.counts();
        let cls = doc.get("classification").unwrap();
        assert_eq!(
            cls.get("biased_taken")
                .and_then(bwsa_obs::json::Json::as_u64),
            Some(t as u64)
        );
        assert_eq!(
            cls.get("biased_not_taken")
                .and_then(bwsa_obs::json::Json::as_u64),
            Some(n as u64)
        );
        assert_eq!(
            cls.get("mixed").and_then(bwsa_obs::json::Json::as_u64),
            Some(m as u64)
        );
        // Equal analyses render identically: the server-vs-local
        // bit-identity comparison rests on this.
        let again = AnalysisPipeline::new().run_observed(&phased_trace(), &Obs::noop());
        assert_eq!(
            again.summary_json().to_pretty_string(),
            doc.to_pretty_string()
        );
        bwsa_obs::json::Json::parse(&doc.to_pretty_string()).unwrap();
    }

    #[test]
    fn pipeline_finds_the_phase_structure() {
        let analysis = AnalysisPipeline::new().run_observed(&phased_trace(), &Obs::noop());
        assert_eq!(analysis.working_sets.report.total_sets, 2);
        assert_eq!(analysis.working_sets.report.max_size, 3);
        assert_eq!(analysis.profile.static_count(), 6);
    }

    #[test]
    fn allocation_methods_agree_with_direct_calls() {
        let trace = phased_trace();
        let analysis = AnalysisPipeline::new().run_observed(&trace, &Obs::noop());
        let cfg = AllocationConfig::default();
        let a = analysis.allocation(Classified(false), 4, &cfg).unwrap();
        let direct = crate::allocation::allocate(&analysis.conflict.graph, 4, &cfg);
        assert_eq!(a, direct);
        let r = analysis
            .required_size(Classified(false), &trace, 1024, &cfg)
            .unwrap();
        assert!(r.size <= 6);
    }

    #[test]
    fn classified_primitives_agree_with_direct_calls() {
        let trace = phased_trace();
        let analysis = AnalysisPipeline::new().run_observed(&trace, &Obs::noop());
        let cfg = AllocationConfig::default();
        assert_eq!(
            analysis.allocation(Classified(true), 4, &cfg).unwrap(),
            crate::allocation::allocate_classified(
                &analysis.conflict.graph,
                &analysis.classification,
                4,
                &cfg,
            )
        );
        assert_eq!(
            analysis
                .required_size(Classified(true), &trace, 1024, &cfg)
                .unwrap(),
            crate::allocation::required_bht_size_classified(
                &analysis.conflict.graph,
                &analysis.classification,
                trace.table(),
                1024,
                &cfg,
            )
        );
    }

    #[test]
    fn bad_allocation_requests_are_errors_not_panics() {
        let trace = phased_trace();
        let analysis = AnalysisPipeline::new().run_observed(&trace, &Obs::noop());
        let cfg = AllocationConfig::default();
        assert!(analysis.allocation(Classified(true), 2, &cfg).is_err());
        assert!(analysis.allocation(Classified(false), 0, &cfg).is_err());
        assert!(analysis
            .required_size(Classified(false), &trace, 0, &cfg)
            .is_err());
    }

    #[test]
    fn classified_required_size_not_larger() {
        let trace = phased_trace();
        let analysis = AnalysisPipeline::new().run_observed(&trace, &Obs::noop());
        let cfg = AllocationConfig::default();
        let plain = analysis
            .required_size(Classified(false), &trace, 2, &cfg)
            .unwrap();
        let classified = analysis
            .required_size(Classified(true), &trace, 2, &cfg)
            .unwrap();
        // Classified needs at least 3 (reserved), but never more than
        // plain + 2.
        assert!(classified.size <= plain.size + 2);
    }

    #[test]
    fn default_config_matches_paper() {
        let p = AnalysisPipeline::new();
        assert_eq!(p.conflict.threshold, 100);
        assert_eq!(p.taken_threshold, 0.99);
        assert_eq!(p.not_taken_threshold, 0.01);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_thresholds() {
        let mut p = AnalysisPipeline::new();
        p.taken_threshold = 1.5;
        assert!(p.validate().is_err());
        let mut p = AnalysisPipeline::new();
        p.not_taken_threshold = 0.995; // above taken_threshold
        assert!(p.validate().is_err());
        let mut p = AnalysisPipeline::new();
        p.conflict.threshold = 0;
        assert!(p.validate().is_err());
    }
}
