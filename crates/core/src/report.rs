//! Serialisable rows mirroring the paper's tables and figures.
//!
//! These types are shared by the `bwsa-bench` harness, the integration
//! tests, and EXPERIMENTS.md generation so that every consumer agrees on
//! what a "row" of each experiment contains.

use serde::{Deserialize, Serialize};

/// One row of Table 1: benchmark, input, and coverage of the analysed
/// branch subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Input set label.
    pub input_set: String,
    /// Total dynamic conditional branches executed.
    pub total_dynamic: u64,
    /// Dynamic branches whose static branch survived the frequency filter.
    pub analyzed_dynamic: u64,
    /// `analyzed / total`, as a percentage.
    pub analyzed_percent: f64,
}

/// One row of Table 2: working-set counts and sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Static conditional branches analysed.
    pub static_branches: usize,
    /// Total number of working sets.
    pub total_sets: usize,
    /// Mean working-set size over sets.
    pub avg_static_size: f64,
    /// Execution-weighted mean working-set size.
    pub avg_dynamic_size: f64,
    /// Largest working set.
    pub max_size: usize,
}

/// One row of Table 3 or Table 4: the required-BHT-size search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequiredSizeRow {
    /// Benchmark label (`perl_a`, `ss_b`, ...).
    pub benchmark: String,
    /// Whether branch classification was applied (Table 4) or not
    /// (Table 3).
    pub classified: bool,
    /// Conventional baseline table size (1024 in the paper).
    pub baseline_size: usize,
    /// The baseline's conflict mass (the bar to clear).
    pub target_mass: u64,
    /// Smallest allocation table size meeting the bar.
    pub required_size: usize,
    /// The allocation's conflict mass at that size.
    pub achieved_mass: u64,
}

/// One bar group of Figure 3 or Figure 4: misprediction rates of every
/// scheme on one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureRow {
    /// Benchmark label.
    pub benchmark: String,
    /// Whether allocation used classification (Figure 4) or not (Figure 3).
    pub classified: bool,
    /// Misprediction rate of allocation with a 16-entry BHT.
    pub alloc_16: f64,
    /// Misprediction rate of allocation with a 128-entry BHT.
    pub alloc_128: f64,
    /// Misprediction rate of allocation with a 1024-entry BHT.
    pub alloc_1024: f64,
    /// Misprediction rate of the conventional PAg with a 1024-entry BHT.
    pub pag_1024: f64,
    /// Misprediction rate of the interference-free PAg.
    pub interference_free: f64,
}

impl FigureRow {
    /// Relative improvement of alloc-1024 over the conventional PAg-1024,
    /// as a fraction of the conventional misprediction rate (the paper's
    /// headline "improved by 16%" metric).
    pub fn alloc_1024_improvement(&self) -> f64 {
        if self.pag_1024 == 0.0 {
            0.0
        } else {
            (self.pag_1024 - self.alloc_1024) / self.pag_1024
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_is_relative() {
        let row = FigureRow {
            benchmark: "x".into(),
            classified: true,
            alloc_16: 0.3,
            alloc_128: 0.12,
            alloc_1024: 0.084,
            pag_1024: 0.1,
            interference_free: 0.08,
        };
        assert!((row.alloc_1024_improvement() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn improvement_handles_zero_baseline() {
        let row = FigureRow {
            benchmark: "x".into(),
            classified: false,
            alloc_16: 0.0,
            alloc_128: 0.0,
            alloc_1024: 0.0,
            pag_1024: 0.0,
            interference_free: 0.0,
        };
        assert_eq!(row.alloc_1024_improvement(), 0.0);
    }

    #[test]
    fn rows_are_constructible_and_debuggable() {
        let row = Table2Row {
            benchmark: "gcc".into(),
            static_branches: 16000,
            total_sets: 51888,
            avg_static_size: 365.0,
            avg_dynamic_size: 336.0,
            max_size: 900,
        };
        let dbg = format!("{row:?}");
        assert!(dbg.contains("51888"));
    }
}
