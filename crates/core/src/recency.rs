//! Flat monotonic recency index — the hot data structure behind the
//! Figure 1 interleave detection.
//!
//! Trace timestamps are nondecreasing ([`bwsa_trace::Trace::push`] and
//! the stream reader both reject time travel), so the ordered set of
//! `(latest stamp, branch)` pairs the detection scans only ever gains
//! entries at its *tail*. [`RecencyRing`] exploits that: entries live in
//! one flat `Vec` sorted by stamp, an insert is a push, and each
//! detection is a `partition_point` binary search plus a forward scan —
//! no tree nodes, no rebalancing, no per-entry allocation.
//!
//! When a branch re-executes, its old entry is not removed (that would
//! shift the tail); it merely stops being the branch's *live* entry. An
//! entry at index `i` for branch `b` is live iff `slot[b] == i`, so
//! staleness is one array compare during the scan. Dead entries are
//! reclaimed by an amortised-O(1) compaction that runs whenever they
//! outnumber live ones, keeping every scan within `2 × live` slots — the
//! same asymptotic window the old `BTreeSet` walked, at a fraction of the
//! constant factor.
//!
//! Out-of-order stamps cannot arrive from any in-repo producer, but
//! [`crate::StreamingInterleave::push`] is a public API, so a regressing
//! stamp takes a correct (if slow) sorted-insert path rather than
//! corrupting the index. Equivalence with the previous tree-based engine
//! — including ties and stamps at `u64::MAX` — is property-tested in
//! `crates/core/tests/hotpath_prop.rs`.

/// Sentinel for "branch has no live entry".
const NO_SLOT: usize = usize::MAX;

/// Append-mostly index of each branch's latest execution stamp, ordered
/// by stamp. See the module docs for the representation.
#[derive(Debug, Clone, Default)]
pub(crate) struct RecencyRing {
    /// `(stamp, branch)` in nondecreasing stamp order; may contain dead
    /// entries awaiting compaction.
    entries: Vec<(u64, u32)>,
    /// `slot[b]` = index of branch `b`'s live entry, or [`NO_SLOT`].
    slot: Vec<usize>,
    /// Number of live entries (`entries.len() - live` are dead).
    live: usize,
}

impl RecencyRing {
    /// An empty index.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the index from per-branch latest stamps — the checkpoint
    /// resume path. Entry `(last_stamp[b], b)` exists for every executed
    /// branch, exactly the state an incremental run would hold.
    pub(crate) fn from_stamps(last_stamp: &[Option<u64>]) -> Self {
        let mut entries: Vec<(u64, u32)> = last_stamp
            .iter()
            .enumerate()
            .filter_map(|(b, stamp)| stamp.map(|t| (t, b as u32)))
            .collect();
        entries.sort_unstable();
        let mut slot = vec![NO_SLOT; last_stamp.len()];
        for (i, &(_, b)) in entries.iter().enumerate() {
            slot[b as usize] = i;
        }
        let live = entries.len();
        RecencyRing {
            entries,
            slot,
            live,
        }
    }

    /// Pushes every branch whose latest stamp is *strictly greater* than
    /// `prev` — except `node` itself — into `hits`.
    ///
    /// Using a partition point instead of a `(prev + 1, _)..` range bound
    /// makes `prev == u64::MAX` a naturally empty scan rather than an
    /// integer overflow.
    pub(crate) fn collect_after(&self, prev: u64, node: u32, hits: &mut Vec<u32>) {
        let start = self.entries.partition_point(|&(s, _)| s <= prev);
        for (i, &(_, b)) in self.entries.iter().enumerate().skip(start) {
            if b != node && self.slot[b as usize] == i {
                hits.push(b);
            }
        }
    }

    /// Records that `node`'s latest stamp is now `t`, superseding any
    /// previous entry for `node`.
    pub(crate) fn record(&mut self, node: u32, t: u64) {
        let b = node as usize;
        if b >= self.slot.len() {
            self.slot.resize(b + 1, NO_SLOT);
        }
        if self.slot[b] != NO_SLOT {
            self.live -= 1; // the old entry goes dead in place
        }
        match self.entries.last() {
            Some(&(last, _)) if t < last => self.insert_out_of_order(node, t),
            _ => {
                self.slot[b] = self.entries.len();
                self.entries.push((t, node));
            }
        }
        self.live += 1;
        self.maybe_compact();
    }

    /// Cold path: a stamp below the current tail. Sorted insert plus a
    /// slot fix-up for every shifted entry, O(n) — correctness backstop
    /// for callers that feed hand-built records.
    #[cold]
    fn insert_out_of_order(&mut self, node: u32, t: u64) {
        let pos = self.entries.partition_point(|&(s, _)| s <= t);
        self.entries.insert(pos, (t, node));
        // Every entry previously at index i >= pos now sits at i + 1.
        // Walk the shifted suffix tail-first so a branch with both a dead
        // and a live copy in the suffix never aliases mid-update.
        for i in (pos + 1..self.entries.len()).rev() {
            let shifted = self.entries[i].1 as usize;
            if self.slot[shifted] == i - 1 {
                self.slot[shifted] = i;
            }
        }
        self.slot[node as usize] = pos;
    }

    /// Drops dead entries in place once they outnumber live ones. The
    /// retained entries keep their relative (sorted) order, and each
    /// surviving branch's slot is rewritten to its new index.
    fn maybe_compact(&mut self) {
        if self.entries.len() < 64 || self.entries.len() < 2 * self.live {
            return;
        }
        let mut w = 0usize;
        for i in 0..self.entries.len() {
            let (s, b) = self.entries[i];
            if self.slot[b as usize] == i {
                self.entries[w] = (s, b);
                self.slot[b as usize] = w;
                w += 1;
            }
        }
        self.entries.truncate(w);
        debug_assert_eq!(w, self.live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(ring: &RecencyRing, prev: u64, node: u32) -> Vec<u32> {
        let mut v = Vec::new();
        ring.collect_after(prev, node, &mut v);
        v.sort_unstable();
        v
    }

    #[test]
    fn scan_returns_strictly_later_live_branches() {
        let mut r = RecencyRing::new();
        r.record(0, 5);
        r.record(1, 10);
        r.record(2, 15);
        assert_eq!(hits(&r, 5, 0), vec![1, 2]);
        assert_eq!(hits(&r, 10, 0), vec![2]);
        assert_eq!(hits(&r, 15, 0), Vec::<u32>::new());
    }

    #[test]
    fn reexecution_supersedes_the_old_entry() {
        let mut r = RecencyRing::new();
        r.record(0, 5);
        r.record(1, 10);
        r.record(0, 20);
        // Branch 0's live stamp is 20 now; its stale stamp-5 entry must
        // not satisfy a scan above 5.
        assert_eq!(hits(&r, 6, 1), vec![0]);
        assert_eq!(
            hits(&r, 2, 1),
            vec![0],
            "stale entry is skipped, live one found"
        );
    }

    #[test]
    fn max_stamp_scan_is_empty_not_overflowing() {
        let mut r = RecencyRing::new();
        r.record(0, u64::MAX);
        r.record(1, u64::MAX);
        assert_eq!(hits(&r, u64::MAX, 0), Vec::<u32>::new());
        assert_eq!(hits(&r, u64::MAX - 1, 0), vec![1]);
    }

    #[test]
    fn compaction_preserves_scan_results() {
        let mut r = RecencyRing::new();
        // Two branches alternating for long enough to trigger compaction
        // many times over.
        for i in 0..10_000u64 {
            r.record((i % 2) as u32, i + 1);
        }
        assert!(r.entries.len() <= 64.max(2 * r.live));
        assert_eq!(hits(&r, 9_999, 0), vec![1]);
        assert_eq!(hits(&r, 10_000, 0), Vec::<u32>::new());
    }

    #[test]
    fn out_of_order_insert_keeps_the_index_exact() {
        let mut r = RecencyRing::new();
        r.record(0, 10);
        r.record(1, 20);
        r.record(2, 30);
        r.record(3, 15); // regression: lands between 10 and 20
        assert_eq!(hits(&r, 12, 9), vec![1, 2, 3]);
        assert_eq!(hits(&r, 15, 9), vec![1, 2]);
        // Entries stay sorted so later appends still work.
        r.record(4, 40);
        assert_eq!(hits(&r, 29, 9), vec![2, 4]);
    }

    #[test]
    fn from_stamps_matches_incremental_construction() {
        let stamps = vec![Some(7u64), None, Some(3), Some(7), None, Some(12)];
        let rebuilt = RecencyRing::from_stamps(&stamps);
        let mut incremental = RecencyRing::new();
        incremental.record(2, 3);
        incremental.record(0, 7);
        incremental.record(3, 7);
        incremental.record(5, 12);
        for prev in [0, 3, 6, 7, 11, 12] {
            assert_eq!(
                hits(&rebuilt, prev, 99),
                hits(&incremental, prev, 99),
                "prev {prev}"
            );
        }
    }
}
