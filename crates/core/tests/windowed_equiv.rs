//! Differential equivalence harness for online windowed analysis.
//!
//! [`WindowedAnalysis`] consumes a trace in reset intervals and folds
//! every window back into cumulative state via the PR-2 merge algebra
//! ([`bwsa_core::merge`]). This suite pins the claims that make that
//! safe to trust, for **arbitrary** traces, window sizes, and worker
//! counts:
//!
//! 1. The folded result is bit-identical to the whole-trace answer —
//!    serial and parallel, for branch-count and instruction-count
//!    windows, including degenerate sizes (1, trace length,
//!    non-dividing, `u64::MAX`).
//! 2. Per-window interleave counts match a seeded naive oracle that
//!    re-derives the paper's strictly-greater stamp rule from scratch,
//!    mirroring the `interleave_counts_naive` discipline.
//! 3. The incremental re-coloring equals a from-scratch coloring of the
//!    cumulative pruned graph at **every** flush, not just the last —
//!    so the signature-gated skip is provably lossless.
//! 4. `WindowConfig` parsing is total: no input panics, the grammar
//!    roundtrips, and zero intervals are typed errors.

use bwsa_core::pipeline::AnalysisPipeline;
use bwsa_core::{
    interleave_counts_naive, ConflictConfig, Execution, ParallelConfig, Session, WindowConfig,
    WindowedAnalysis, WindowedResult,
};
use bwsa_graph::coloring::{color_graph, ColoringOptions};
use bwsa_trace::{Trace, TraceBuilder};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::num::NonZeroUsize;

/// Traces with up to 10 static branches and repeatable timestamps
/// (`dt = 0` keeps the previous stamp: equal stamps must NOT interleave
/// under the strictly-greater rule, and a window boundary falling
/// between equal-stamp records is where a sloppy carry would miscount).
fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u8..10, any::<bool>(), 0u64..3), 1..250).prop_map(|steps| {
        let mut b = TraceBuilder::new("windowed-prop");
        let mut t = 1u64;
        for (slot, taken, dt) in steps {
            t += dt;
            b.record(0x1000 + u64::from(slot) * 4, taken, t);
        }
        b.finish()
    })
}

/// Low-threshold pipeline so small property traces keep conflict edges.
fn sensitive_pipeline() -> AnalysisPipeline {
    AnalysisPipeline {
        conflict: ConflictConfig::with_threshold(1).unwrap(),
        ..AnalysisPipeline::new()
    }
}

fn drive(trace: &Trace, config: WindowConfig, pipeline: AnalysisPipeline) -> WindowedResult {
    let mut engine = WindowedAnalysis::new(config, pipeline);
    for (id, r) in trace.indexed_records() {
        engine.push(id.as_u32(), r.time.get(), r.is_taken());
    }
    engine.finish()
}

fn parallel(jobs: usize) -> Execution {
    Execution::Parallel(ParallelConfig {
        jobs: NonZeroUsize::new(jobs).unwrap(),
        shards: NonZeroUsize::new(5),
    })
}

proptest! {
    #[test]
    fn windows_fold_into_the_exact_whole_trace_answer(
        trace in arb_trace(),
        window in 1u64..400,
        jobs in 1usize..4,
        instructions in any::<bool>(),
    ) {
        let config = if instructions {
            WindowConfig::instructions(window).unwrap()
        } else {
            WindowConfig::branches(window).unwrap()
        };
        let result = drive(&trace, config, AnalysisPipeline::new());

        // Identical to the serial whole-trace run...
        let serial = Session::new(&trace);
        prop_assert_eq!(&result.analysis, serial.run().unwrap());
        // ...and to the sharded parallel engine for any worker count.
        let sharded = Session::new(&trace).with_execution(parallel(jobs));
        prop_assert_eq!(&result.analysis, sharded.run().unwrap());

        // The windows partition the trace: every record lands in exactly
        // one window, and the final cumulative graph is the whole answer.
        let records: u64 = result.windows.iter().map(|w| w.records).sum();
        prop_assert_eq!(records, trace.len() as u64);
        if !instructions {
            let expect = (trace.len() as u64).div_ceil(window) as usize;
            prop_assert_eq!(result.windows.len(), expect);
        }
        if let Some(last) = result.windows.last() {
            prop_assert_eq!(
                last.cumulative_edges_kept,
                result.analysis.conflict.graph.edge_count()
            );
        }
        // Raw interleave weight is conserved across the carry: summing
        // the per-window detections reproduces the naive total.
        let weight: u64 = result.windows.iter().map(|w| w.interleave_weight).sum();
        prop_assert_eq!(weight, interleave_counts_naive(&trace).build().total_weight());
    }

    #[test]
    fn degenerate_window_sizes_are_exact(trace in arb_trace(), instructions in any::<bool>()) {
        let whole = Session::new(&trace);
        let whole = whole.run().unwrap();
        let len = trace.len() as u64;
        for interval in [1, len, len + 7, u64::MAX] {
            let config = if instructions {
                WindowConfig::instructions(interval).unwrap()
            } else {
                WindowConfig::branches(interval).unwrap()
            };
            let result = drive(&trace, config, AnalysisPipeline::new());
            prop_assert_eq!(&result.analysis, whole);
            if interval == u64::MAX {
                prop_assert!(result.windows.len() <= 1, "one giant window at most");
            }
        }
    }

    #[test]
    fn final_coloring_matches_a_scratch_coloring_of_the_folded_graph(
        trace in arb_trace(),
        window in 1u64..80,
        table in 1usize..12,
    ) {
        let config = WindowConfig::branches(window).unwrap().with_table_size(table);
        let result = drive(&trace, config, sensitive_pipeline());
        let scratch = color_graph(
            &result.analysis.conflict.graph,
            table,
            &ColoringOptions::default(),
        );
        prop_assert_eq!(&result.assignment, &scratch.assignment);
    }

    #[test]
    fn incremental_recoloring_equals_scratch_at_every_flush(
        trace in arb_trace(),
        window in 1u64..60,
        table in 1usize..8,
    ) {
        // The oracle: after each flush, a from-scratch naive interleave
        // pass over the records consumed so far, pruned and colored
        // fresh, must agree with the engine's incrementally maintained
        // assignment — including flushes where the signature gate
        // skipped the exact re-coloring.
        let config = WindowConfig::branches(window).unwrap().with_table_size(table);
        let mut engine = WindowedAnalysis::new(config, sensitive_pipeline());
        let mut consumed: Vec<(u64, bool, u64)> = Vec::new();
        let mut flushes = 0usize;
        for (id, r) in trace.indexed_records() {
            engine.push(id.as_u32(), r.time.get(), r.is_taken());
            consumed.push((r.pc.addr(), r.is_taken(), r.time.get()));
            if engine.windows().len() == flushes {
                continue;
            }
            flushes = engine.windows().len();
            let mut b = TraceBuilder::new("prefix");
            for &(pc, taken, t) in &consumed {
                b.record(pc, taken, t);
            }
            let prefix = b.finish();
            let pruned = interleave_counts_naive(&prefix).build().pruned(1);
            let scratch = color_graph(&pruned, table, &ColoringOptions::default());
            prop_assert_eq!(engine.assignment(), &scratch.assignment[..]);
        }
    }

    #[test]
    fn per_window_interleave_counts_match_a_seeded_naive_oracle(
        trace in arb_trace(),
        window in 1u64..100,
    ) {
        // The oracle mirrors `interleave_counts_naive`: when a branch
        // re-executes, every *other* branch whose latest stamp is
        // strictly greater than this branch's previous stamp interleaved
        // with it once. The `seen` map carries across window boundaries
        // exactly like the engine's ShardBoundary carry.
        let mut seen: HashMap<u32, u64> = HashMap::new();
        let mut expected: Vec<(usize, u64)> = Vec::new();
        let mut pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut weight = 0u64;
        let mut in_window = 0u64;
        for (id, r) in trace.indexed_records() {
            let node = id.as_u32();
            if let Some(prev) = seen.get(&node).copied() {
                for (&b, &bt) in &seen {
                    if b != node && bt > prev {
                        weight += 1;
                        pairs.insert((node.min(b), node.max(b)));
                    }
                }
            }
            seen.insert(node, r.time.get());
            in_window += 1;
            if in_window == window {
                expected.push((pairs.len(), weight));
                pairs.clear();
                weight = 0;
                in_window = 0;
            }
        }
        if in_window > 0 {
            expected.push((pairs.len(), weight));
        }

        let config = WindowConfig::branches(window).unwrap();
        let result = drive(&trace, config, AnalysisPipeline::new());
        let got: Vec<(usize, u64)> = result
            .windows
            .iter()
            .map(|w| (w.interleave_pairs, w.interleave_weight))
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn window_config_parsing_is_total(spec in "\\PC{0,12}") {
        // No input may panic; success implies the value reprints into a
        // spec that parses back to the same configuration.
        if let Ok(config) = WindowConfig::parse(&spec) {
            let unit = if config.unit() == bwsa_core::WindowUnit::Instructions { "i" } else { "" };
            let reprinted = format!("{}{}", config.interval(), unit);
            prop_assert_eq!(WindowConfig::parse(&reprinted).unwrap(), config);
        }
    }

    #[test]
    fn window_config_grammar_roundtrips(n in 1u64..=u64::MAX, instructions in any::<bool>()) {
        let spec = if instructions { format!("{n}i") } else { n.to_string() };
        let config = WindowConfig::parse(&spec).unwrap();
        prop_assert_eq!(config.interval(), n);
        prop_assert_eq!(
            config.unit() == bwsa_core::WindowUnit::Instructions,
            instructions
        );
    }
}

#[test]
fn zero_intervals_and_garbage_specs_are_typed_errors() {
    assert!(WindowConfig::branches(0).is_err());
    assert!(WindowConfig::instructions(0).is_err());
    for bad in ["", "0", "0i", "i", "12x", "-3", "1.5", "i12", " 12", "12 "] {
        assert!(WindowConfig::parse(bad).is_err(), "{bad:?} must not parse");
    }
}

#[test]
fn an_empty_trace_yields_zero_windows_in_both_units() {
    let trace = TraceBuilder::new("empty").finish();
    for config in [
        WindowConfig::branches(10).unwrap(),
        WindowConfig::instructions(10).unwrap(),
        WindowConfig::branches(u64::MAX).unwrap(),
    ] {
        let result = drive(&trace, config, AnalysisPipeline::new());
        assert!(result.windows.is_empty());
        assert_eq!(result.records, 0);
        assert_eq!(&result.analysis, Session::new(&trace).run().unwrap());
    }
}
