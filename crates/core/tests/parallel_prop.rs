//! Property tests for the parallel sharded engine: for arbitrary traces,
//! shard counts, and worker counts, the parallel pipeline must be
//! **bit-identical** to the serial one — same `Analysis`, same conflict
//! graph, same allocation tables — and the shard-combine operations must
//! be associative.
//!
//! Timestamps here may repeat (`dt` can be 0), deliberately: equal stamps
//! do NOT interleave under the paper's strictly-greater rule, and a shard
//! boundary falling between two equal-stamp records is exactly where a
//! sloppy carry would miscount.

use bwsa_core::allocation::AllocationConfig;
use bwsa_core::merge::{ShardBoundary, ShardDelta};
use bwsa_core::pipeline::AnalysisPipeline;
use bwsa_core::{analyze_parallel, parallel_map, Classified, ParallelConfig};
use bwsa_obs::Obs;
use bwsa_trace::{Trace, TraceBuilder};
use proptest::prelude::*;
use std::num::NonZeroUsize;

/// Traces with up to 10 static branches and repeatable timestamps.
fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u8..10, any::<bool>(), 0u64..3), 1..250).prop_map(|steps| {
        let mut b = TraceBuilder::new("prop");
        let mut t = 1u64;
        for (slot, taken, dt) in steps {
            t += dt; // dt = 0 keeps the previous stamp: equal-time records
            b.record(0x1000 + u64::from(slot) * 4, taken, t);
        }
        b.finish()
    })
}

fn config(jobs: usize, shards: usize) -> ParallelConfig {
    ParallelConfig {
        jobs: NonZeroUsize::new(jobs).unwrap(),
        shards: NonZeroUsize::new(shards),
    }
}

fn triples(trace: &Trace) -> Vec<(u32, u64, bool)> {
    trace
        .indexed_records()
        .map(|(id, r)| (id.as_u32(), r.time.get(), r.is_taken()))
        .collect()
}

proptest! {
    #[test]
    fn parallel_analysis_is_bit_identical_to_serial(
        trace in arb_trace(),
        jobs in 1usize..6,
        shards in 1usize..40,
    ) {
        let pipeline = AnalysisPipeline::new();
        let serial = pipeline.run_observed(&trace, &Obs::noop());
        let parallel = analyze_parallel(&pipeline, &trace, &config(jobs, shards));
        prop_assert_eq!(&parallel, &serial);
        // The conflict graphs compare above as part of Analysis, but make
        // the edge-level identity explicit for the raw (unthresholded)
        // builder output too.
        prop_assert_eq!(
            parallel.conflict.raw_edge_count,
            serial.conflict.raw_edge_count
        );
    }

    #[test]
    fn degenerate_shard_counts_are_exact(trace in arb_trace(), jobs in 1usize..5) {
        // One shard (pure serial) and more shards than records (most
        // shards empty) are the boundary cases of the split.
        let pipeline = AnalysisPipeline::new();
        let serial = pipeline.run_observed(&trace, &Obs::noop());
        for shards in [1, trace.len(), trace.len() + 7] {
            let cfg = config(jobs, shards.max(1));
            prop_assert_eq!(analyze_parallel(&pipeline, &trace, &cfg), serial.clone());
        }
    }

    #[test]
    fn allocation_tables_agree_between_serial_and_parallel(
        trace in arb_trace(),
        jobs in 1usize..5,
        table in 1usize..12,
    ) {
        let pipeline = AnalysisPipeline {
            conflict: bwsa_core::ConflictConfig::with_threshold(1).unwrap(),
            ..AnalysisPipeline::new()
        };
        let cfg = AllocationConfig::default();
        let serial = pipeline.run_observed(&trace, &Obs::noop());
        let parallel = analyze_parallel(&pipeline, &trace, &config(jobs, jobs * 2));
        prop_assert_eq!(
            parallel.allocation(Classified(false), table, &cfg).unwrap(),
            serial.allocation(Classified(false), table, &cfg).unwrap()
        );
        prop_assert_eq!(
            parallel.allocation(Classified(true), table.max(3), &cfg).unwrap(),
            serial.allocation(Classified(true), table.max(3), &cfg).unwrap()
        );
    }

    #[test]
    fn boundary_join_is_associative(trace in arb_trace(), a in 1usize..100, b in 1usize..100) {
        let all = triples(&trace);
        let n = trace.static_branch_count();
        // Split into three ranges [0, x), [x, y), [y, len).
        let x = a % (all.len() + 1);
        let y = x + b % (all.len() - x + 1);
        let summarise = |r: &[(u32, u64, bool)]| {
            ShardBoundary::of_records(n, r.iter().map(|&(b, t, _)| (b, t)))
        };
        let (p, q, r) = (summarise(&all[..x]), summarise(&all[x..y]), summarise(&all[y..]));
        let mut left = p.clone();
        left.join(&q);
        left.join(&r);
        let mut qr = q.clone();
        qr.join(&r);
        let mut right = p.clone();
        right.join(&qr);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &summarise(&all));
    }

    #[test]
    fn delta_merge_is_associative(trace in arb_trace(), a in 1usize..100, b in 1usize..100) {
        let all = triples(&trace);
        let n = trace.static_branch_count();
        let x = a % (all.len() + 1);
        let y = x + b % (all.len() - x + 1);
        let summarise = |r: &[(u32, u64, bool)]| {
            ShardBoundary::of_records(n, r.iter().map(|&(b, t, _)| (b, t)))
        };
        let mut carry_x = ShardBoundary::empty(n);
        carry_x.join(&summarise(&all[..x]));
        let mut carry_y = carry_x.clone();
        carry_y.join(&summarise(&all[x..y]));
        let p = ShardDelta::of_shard(n, &ShardBoundary::empty(n), all[..x].iter().copied());
        let q = ShardDelta::of_shard(n, &carry_x, all[x..y].iter().copied());
        let r = ShardDelta::of_shard(n, &carry_y, all[y..].iter().copied());
        let mut left = p.clone();
        left.merge(&q);
        left.merge(&r);
        let mut qr = q.clone();
        qr.merge(&r);
        let mut right = p.clone();
        right.merge(&qr);
        prop_assert_eq!(left.record_count(), right.record_count());
        prop_assert_eq!(left.record_count(), all.len() as u64);
        // Compiled graphs and serial reference agree for both groupings.
        let serial = bwsa_core::interleave_counts(&trace).build();
        prop_assert_eq!(left.into_graph(), serial.clone());
        prop_assert_eq!(right.into_graph(), serial);
    }

    #[test]
    fn parallel_map_is_order_preserving_for_any_job_count(
        items in prop::collection::vec(0u64..1000, 0..60),
        jobs in 1usize..9,
    ) {
        let expect: Vec<u64> = items.iter().map(|v| v.wrapping_mul(7) ^ 13).collect();
        let got = parallel_map(items, jobs, |_, v| v.wrapping_mul(7) ^ 13);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn supervised_shard_mapper_is_identical_when_no_faults_fire(
        trace in arb_trace(),
        jobs in 1usize..6,
        shards in 1usize..20,
    ) {
        use bwsa_core::{analyze_parallel_supervised, ShardRetryPolicy};
        use std::sync::atomic::{AtomicU64, Ordering};
        let pipeline = AnalysisPipeline::new();
        let serial = pipeline.run_observed(&trace, &Obs::noop());
        let retries = AtomicU64::new(0);
        let supervised = analyze_parallel_supervised(
            &pipeline,
            &trace,
            &config(jobs, shards),
            &Obs::noop(),
            &ShardRetryPolicy::default(),
            &retries,
        )
        .unwrap();
        prop_assert_eq!(&supervised, &serial);
        prop_assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn predictor_sweep_matches_serial_simulation(trace in arb_trace(), jobs in 1usize..6) {
        use bwsa_predictor::{simulate, sweep, Bimodal, Gshare, Pag, SweepCell};
        let serial = vec![
            simulate(&mut Pag::paper_baseline(), &trace),
            simulate(&mut Bimodal::new(64), &trace),
            simulate(&mut Gshare::new(8), &trace),
        ];
        let cells = vec![
            SweepCell::plain(Pag::paper_baseline(), &trace),
            SweepCell::plain(Bimodal::new(64), &trace),
            SweepCell::plain(Gshare::new(8), &trace),
        ];
        prop_assert_eq!(sweep(cells, jobs).unwrap(), serial);
    }
}
