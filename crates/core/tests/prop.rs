//! Property-based tests for the analysis core.

use bwsa_core::allocation::{allocate, conventional_conflict_mass, AllocationConfig};
use bwsa_core::conflict::{ConflictAnalysis, ConflictConfig};
use bwsa_core::{
    classify, interleave_counts, interleave_counts_naive, working_sets, WorkingSetDefinition,
};
use bwsa_trace::{profile::BranchProfile, Trace, TraceBuilder};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u8..10, any::<bool>(), 1u64..4), 1..250).prop_map(|steps| {
        let mut b = TraceBuilder::new("prop");
        let mut t = 0u64;
        for (slot, taken, dt) in steps {
            t += dt;
            b.record(0x1000 + u64::from(slot) * 4, taken, t);
        }
        b.finish()
    })
}

proptest! {
    #[test]
    fn fast_interleave_matches_naive_oracle(trace in arb_trace()) {
        let fast = interleave_counts(&trace).build();
        let naive = interleave_counts_naive(&trace).build();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn interleave_weight_bounded_by_detections(trace in arb_trace()) {
        // Each dynamic branch instance can contribute at most
        // (static_branches - 1) detections.
        let g = interleave_counts(&trace).build();
        let bound = trace.len() as u64 * trace.static_branch_count().max(1) as u64;
        prop_assert!(g.total_weight() <= bound);
    }

    #[test]
    fn thresholding_is_monotone(trace in arb_trace(), t1 in 1u64..20, t2 in 1u64..20) {
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        let a_lo = ConflictAnalysis::of_trace(&trace, ConflictConfig::with_threshold(lo).unwrap());
        let a_hi = ConflictAnalysis::of_trace(&trace, ConflictConfig::with_threshold(hi).unwrap());
        prop_assert!(a_hi.graph.edge_count() <= a_lo.graph.edge_count());
        prop_assert!(a_hi.graph.total_weight() <= a_lo.graph.total_weight());
    }

    #[test]
    fn working_set_partition_covers_all_branches(trace in arb_trace()) {
        let analysis = ConflictAnalysis::of_trace(&trace, ConflictConfig::with_threshold(2).unwrap());
        let profile = BranchProfile::from_trace(&trace);
        let ws = working_sets(&analysis.graph, &profile, WorkingSetDefinition::Partition);
        let covered: usize = ws.sets.iter().map(Vec::len).sum();
        prop_assert_eq!(covered, trace.static_branch_count());
        // Sets are cliques of the graph.
        for set in &ws.sets {
            let raw: Vec<u32> = set.iter().map(|id| id.as_u32()).collect();
            prop_assert!(analysis.graph.is_clique(&raw));
        }
    }

    #[test]
    fn allocation_mass_never_exceeds_graph_weight(trace in arb_trace(), k in 1usize..12) {
        let analysis = ConflictAnalysis::of_trace(&trace, ConflictConfig::with_threshold(1).unwrap());
        let a = allocate(&analysis.graph, k, &AllocationConfig::default());
        prop_assert!(a.conflict_mass <= analysis.graph.total_weight());
        // Every branch receives an entry within the table.
        prop_assert_eq!(a.index.assigned_count(), trace.static_branch_count());
    }

    #[test]
    fn allocation_with_node_count_entries_is_conflict_free(trace in arb_trace()) {
        let analysis = ConflictAnalysis::of_trace(&trace, ConflictConfig::with_threshold(1).unwrap());
        let n = analysis.graph.node_count().max(1);
        let a = allocate(&analysis.graph, n, &AllocationConfig::default());
        prop_assert_eq!(a.conflict_mass, 0);
    }

    #[test]
    fn conventional_mass_decreases_with_table_size(trace in arb_trace()) {
        let analysis = ConflictAnalysis::of_trace(&trace, ConflictConfig::with_threshold(1).unwrap());
        // A table large enough that all 10 possible word-indexes are
        // distinct has zero conventional mass.
        let huge = conventional_conflict_mass(&analysis.graph, trace.table(), 1 << 16);
        prop_assert_eq!(huge, 0);
        let tiny = conventional_conflict_mass(&analysis.graph, trace.table(), 1);
        prop_assert_eq!(tiny, analysis.graph.total_weight());
    }

    #[test]
    fn classification_is_exhaustive_and_consistent(trace in arb_trace()) {
        let profile = BranchProfile::from_trace(&trace);
        let c = classify(&profile);
        let (t, n, m) = c.counts();
        prop_assert_eq!(t + n + m, trace.static_branch_count());
        for (id, stats) in profile.iter() {
            let rate = stats.taken_rate();
            match c.class(id) {
                bwsa_core::BiasClass::BiasedTaken => prop_assert!(rate >= 0.99),
                bwsa_core::BiasClass::BiasedNotTaken => prop_assert!(rate <= 0.01),
                bwsa_core::BiasClass::Mixed => prop_assert!(rate > 0.01 && rate < 0.99),
            }
        }
    }

    #[test]
    fn refined_graph_is_subgraph(trace in arb_trace()) {
        let profile = BranchProfile::from_trace(&trace);
        let c = classify(&profile);
        let analysis = ConflictAnalysis::of_trace(&trace, ConflictConfig::with_threshold(1).unwrap());
        let refined = c.refine_graph(&analysis.graph);
        prop_assert!(refined.edge_count() <= analysis.graph.edge_count());
        for (a, b, w) in refined.iter_edges() {
            prop_assert_eq!(analysis.graph.edge_weight(a, b), Some(w));
        }
    }
}
