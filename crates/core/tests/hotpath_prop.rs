//! Property tests pinning the flat hot-path engine to its independent
//! oracle: for arbitrary monotone-timestamp traces — including runs of
//! equal stamps and stamps pressed against `u64::MAX` — the ring-indexed
//! [`bwsa_core::interleave_counts`], the record-by-record
//! [`bwsa_core::StreamingInterleave`], and the linear-scan
//! [`bwsa_core::interleave_counts_naive`] must produce identical edge
//! sets.
//!
//! The naive oracle shares nothing with the fast engine but the paper's
//! strictly-greater rule itself, so agreement here is evidence about the
//! rule, not about a shared bug.

use bwsa_core::{interleave_counts, interleave_counts_naive, StreamingInterleave};
use bwsa_trace::{Trace, TraceBuilder};
use proptest::prelude::*;

/// Sorted `(a, b, weight)` edges of a builder — the comparison key.
fn sorted_edges(builder: &bwsa_graph::GraphBuilder) -> Vec<(u32, u32, u64)> {
    let mut edges: Vec<_> = builder.edges().collect();
    edges.sort_unstable();
    edges
}

/// Traces over up to 12 static branches with nondecreasing stamps.
/// `dt = 0` produces ties (which must NOT interleave); `base` optionally
/// pushes the whole trace to the top of the timestamp range, where the
/// old `prev + 1` range scan overflowed.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        prop::collection::vec((0u8..12, any::<bool>(), 0u64..4), 1..300),
        any::<bool>(),
    )
        .prop_map(|(steps, near_max)| {
            let total_dt: u64 = steps.iter().map(|&(_, _, dt)| dt).sum();
            let mut t = if near_max {
                // End exactly at u64::MAX so the final stamps sit on the
                // boundary the legacy engine could not represent.
                u64::MAX - total_dt
            } else {
                1
            };
            let mut b = TraceBuilder::new("hotpath-prop");
            for (slot, taken, dt) in steps {
                t += dt;
                b.record(0x4000 + u64::from(slot) * 4, taken, t);
            }
            b.finish()
        })
}

proptest! {
    #[test]
    fn fast_streaming_and_naive_engines_agree(trace in arb_trace()) {
        let fast = interleave_counts(&trace);
        let naive = interleave_counts_naive(&trace);
        prop_assert_eq!(sorted_edges(&fast), sorted_edges(&naive));

        let mut streaming = StreamingInterleave::new();
        for rec in trace.records() {
            streaming.push(rec);
        }
        let (builder, table) = streaming.finish();
        prop_assert_eq!(table.len(), trace.static_branch_count());
        prop_assert_eq!(sorted_edges(&builder), sorted_edges(&naive));
    }

    #[test]
    fn built_graphs_are_identical_too(trace in arb_trace()) {
        // `build()` sorts adjacency, so CSR equality is the end-to-end
        // bit-identity claim.
        prop_assert_eq!(
            interleave_counts(&trace).build(),
            interleave_counts_naive(&trace).build()
        );
    }
}
