//! Property test: instrumentation must be **observation only**. For
//! arbitrary traces, configurations, and execution strategies, a run with
//! a recording observer produces results bit-identical to a run with the
//! no-op observer — and the recording run actually covers every pipeline
//! stage with a span.

use bwsa_core::pipeline::AnalysisPipeline;
use bwsa_core::{
    analyze_parallel_observed, Classified, ConflictConfig, Execution, ParallelConfig, Session,
    StreamingAnalysis, SupervisorConfig,
};
use bwsa_obs::Obs;
use bwsa_trace::{Trace, TraceBuilder};
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u8..12, any::<bool>(), 0u64..3), 1..300).prop_map(|steps| {
        let mut b = TraceBuilder::new("prop");
        let mut t = 1u64;
        for (slot, taken, dt) in steps {
            t += dt;
            b.record(0x2000 + u64::from(slot) * 4, taken, t);
        }
        b.finish()
    })
}

fn arb_pipeline() -> impl Strategy<Value = AnalysisPipeline> {
    (1u64..200).prop_map(|threshold| AnalysisPipeline {
        conflict: ConflictConfig::with_threshold(threshold).unwrap(),
        ..AnalysisPipeline::new()
    })
}

proptest! {
    #[test]
    fn serial_run_is_identical_with_and_without_observer(
        trace in arb_trace(),
        pipeline in arb_pipeline(),
    ) {
        let obs = Obs::recording();
        let observed = pipeline.run_observed(&trace, &obs);
        let plain = pipeline.run_observed(&trace, &Obs::noop());
        prop_assert_eq!(&observed, &plain);

        // And the observation is complete: every serial stage has a span.
        let metrics = obs.snapshot().unwrap();
        for stage in ["profile", "interleave", "conflict_prune", "working_sets", "classify"] {
            prop_assert!(metrics.stage(stage).is_some(), "missing span {}", stage);
        }
        prop_assert_eq!(
            metrics.counter("core.graph_edges_kept"),
            observed.conflict.graph.edge_count() as u64
        );
        prop_assert_eq!(
            metrics.counter("core.graph_edges_raw"),
            observed.conflict.raw_edge_count as u64
        );
    }

    #[test]
    fn parallel_run_is_identical_with_and_without_observer(
        trace in arb_trace(),
        pipeline in arb_pipeline(),
        jobs in 1usize..5,
        shards in 1usize..20,
    ) {
        let cfg = ParallelConfig {
            jobs: NonZeroUsize::new(jobs).unwrap(),
            shards: NonZeroUsize::new(shards),
        };
        let obs = Obs::recording();
        let observed = analyze_parallel_observed(&pipeline, &trace, &cfg, &obs);
        let plain = analyze_parallel_observed(&pipeline, &trace, &cfg, &Obs::noop());
        prop_assert_eq!(&observed, &plain);
        prop_assert_eq!(&observed, &pipeline.run_observed(&trace, &Obs::noop()));

        let metrics = obs.snapshot().unwrap();
        for stage in ["shard_summarize", "shard_combine", "shard_detect",
                      "conflict_prune", "working_sets", "classify"] {
            prop_assert!(metrics.stage(stage).is_some(), "missing span {}", stage);
        }
        prop_assert_eq!(metrics.counter("core.shards_merged"), shards as u64);
    }

    #[test]
    fn observed_sessions_allocate_identically(
        trace in arb_trace(),
        table in 3usize..16,
        classified in any::<bool>(),
    ) {
        let observed = Session::new(&trace).with_observer(Obs::recording());
        let plain = Session::new(&trace);
        prop_assert_eq!(
            observed.allocate(Classified(classified), table).unwrap(),
            plain.allocate(Classified(classified), table).unwrap()
        );
        prop_assert_eq!(
            observed.required_bht_size(Classified(classified), 1024).unwrap(),
            plain.required_bht_size(Classified(classified), 1024).unwrap()
        );
    }

    #[test]
    fn streaming_finish_is_identical_with_and_without_observer(
        trace in arb_trace(),
        split_seed in any::<u64>(),
    ) {
        let split = (split_seed % (trace.len() as u64 + 1)) as usize;
        let pipeline = AnalysisPipeline::new();
        let obs = Obs::recording();

        let mut observed = StreamingAnalysis::new("prop");
        for r in &trace.records()[..split] {
            observed.push(r);
        }
        let blob = observed.save_observed(&obs);
        let mut observed = StreamingAnalysis::load_observed(&blob, &obs).unwrap();
        for r in &trace.records()[split..] {
            observed.push(r);
        }
        let observed = observed.finish_observed(&pipeline, &obs);

        prop_assert_eq!(&observed, &pipeline.run_observed(&trace, &Obs::noop()));
        let metrics = obs.snapshot().unwrap();
        prop_assert!(metrics.stage("checkpoint_save").is_some());
        prop_assert!(metrics.stage("checkpoint_restore").is_some());
    }

    #[test]
    fn execution_strategy_is_invisible_in_session_results(
        trace in arb_trace(),
        jobs in 1usize..5,
    ) {
        let serial = Session::new(&trace).with_execution(Execution::Serial);
        let parallel = Session::new(&trace)
            .with_execution(Execution::Parallel(ParallelConfig::with_jobs(jobs)))
            .with_observer(Obs::recording());
        prop_assert_eq!(serial.run().unwrap(), parallel.run().unwrap());
    }

    #[test]
    fn supervision_is_invisible_when_no_faults_fire(
        trace in arb_trace(),
        jobs in 1usize..5,
    ) {
        // The supervisor is pure mechanism: with failpoints disabled it
        // must neither change results nor take extra attempts.
        let baseline = Session::new(&trace);
        let plain = baseline.run().unwrap();
        for execution in [
            Execution::Serial,
            Execution::Parallel(ParallelConfig::with_jobs(jobs)),
        ] {
            let session = Session::new(&trace)
                .with_execution(execution)
                .with_supervisor(SupervisorConfig::default())
                .with_observer(Obs::recording());
            let supervised = session.run().unwrap();
            prop_assert_eq!(&supervised, &plain);
            let summary = session.resilience_summary().unwrap();
            prop_assert_eq!(summary.attempts, 1);
            prop_assert_eq!(summary.retries, 0);
            prop_assert!(summary.downgrades.is_empty());
            prop_assert!(summary.faults.is_empty());
        }
    }
}
