//! Branch behavior models: how a static branch decides its direction.
//!
//! Each static conditional branch in a synthetic program carries a
//! [`BranchBehavior`]. The interpreter keeps one [`BehaviorState`] per
//! static branch and asks it for the next direction at every dynamic
//! instance. The models cover the behaviour classes branch-prediction
//! papers care about:
//!
//! * loop back-edges ([`BranchBehavior::LoopExit`]) — taken `trips − 1`
//!   times, then not taken, repeating;
//! * highly biased and unbiased data-dependent branches
//!   ([`BranchBehavior::Bernoulli`]);
//! * short periodic patterns ([`BranchBehavior::Pattern`]) — perfectly
//!   predictable with enough local history;
//! * globally correlated branches ([`BranchBehavior::Correlated`]) whose
//!   outcome follows the previous dynamic branch's outcome.

use crate::WorkloadError;
use bwsa_trace::Direction;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Direction model of one static conditional branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BranchBehavior {
    /// Taken independently with probability `taken_prob`.
    Bernoulli {
        /// Probability in `[0, 1]` of resolving taken.
        taken_prob: f64,
    },
    /// A loop back-edge: taken `trips − 1` consecutive times, then not
    /// taken once, then the cycle repeats.
    LoopExit {
        /// Loop trip count; must be at least 1.
        trips: u32,
    },
    /// A fixed periodic direction sequence (`true` = taken).
    Pattern {
        /// The repeating outcome sequence; must be non-empty.
        bits: Vec<bool>,
    },
    /// Follows the globally most recent branch outcome with probability
    /// `agree_prob`, otherwise opposes it — a crude model of
    /// inter-branch correlation.
    Correlated {
        /// Probability in `[0, 1]` of agreeing with the previous outcome.
        agree_prob: f64,
    },
}

impl BranchBehavior {
    /// Validates the model's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidBehavior`] when a probability is
    /// outside `[0, 1]`, a trip count is zero, or a pattern is empty.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let bad = |reason: String| Err(WorkloadError::InvalidBehavior { reason });
        match self {
            BranchBehavior::Bernoulli { taken_prob } => {
                if !(0.0..=1.0).contains(taken_prob) {
                    return bad(format!("taken_prob {taken_prob} outside [0,1]"));
                }
            }
            BranchBehavior::LoopExit { trips } => {
                if *trips == 0 {
                    return bad("loop trip count must be >= 1".into());
                }
            }
            BranchBehavior::Pattern { bits } => {
                if bits.is_empty() {
                    return bad("pattern must be non-empty".into());
                }
            }
            BranchBehavior::Correlated { agree_prob } => {
                if !(0.0..=1.0).contains(agree_prob) {
                    return bad(format!("agree_prob {agree_prob} outside [0,1]"));
                }
            }
        }
        Ok(())
    }

    /// The long-run expected taken rate of this behavior, used by workload
    /// generators to reason about bias classes without simulating.
    ///
    /// For [`BranchBehavior::Correlated`] this is 0.5 by symmetry.
    pub fn expected_taken_rate(&self) -> f64 {
        match self {
            BranchBehavior::Bernoulli { taken_prob } => *taken_prob,
            BranchBehavior::LoopExit { trips } => (*trips as f64 - 1.0) / *trips as f64,
            BranchBehavior::Pattern { bits } => {
                bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
            }
            BranchBehavior::Correlated { .. } => 0.5,
        }
    }

    /// Creates the initial per-branch runtime state for this model.
    pub fn initial_state(&self) -> BehaviorState {
        match self {
            BranchBehavior::Bernoulli { .. } => BehaviorState::Stateless,
            BranchBehavior::LoopExit { .. } => BehaviorState::LoopIteration(0),
            BranchBehavior::Pattern { .. } => BehaviorState::PatternPosition(0),
            BranchBehavior::Correlated { .. } => BehaviorState::Stateless,
        }
    }
}

/// Mutable per-branch runtime state paired with a [`BranchBehavior`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BehaviorState {
    /// The model needs no per-branch state.
    Stateless,
    /// Current iteration within the loop (for [`BranchBehavior::LoopExit`]).
    LoopIteration(u32),
    /// Current index into the pattern (for [`BranchBehavior::Pattern`]).
    PatternPosition(usize),
}

/// Shared dynamic context threaded through direction decisions.
#[derive(Debug, Clone, Copy)]
pub struct DecisionContext {
    /// Direction of the most recent dynamic branch (any static branch).
    pub last_outcome: Direction,
}

impl Default for DecisionContext {
    fn default() -> Self {
        DecisionContext {
            last_outcome: Direction::NotTaken,
        }
    }
}

/// Resolves the next direction for a branch, advancing its state.
///
/// # Example
///
/// ```
/// use bwsa_workload::behavior::{decide, BranchBehavior, DecisionContext};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let behavior = BranchBehavior::LoopExit { trips: 3 };
/// let mut state = behavior.initial_state();
/// let mut rng = SmallRng::seed_from_u64(1);
/// let ctx = DecisionContext::default();
/// let seq: Vec<bool> = (0..6)
///     .map(|_| decide(&behavior, &mut state, &mut rng, &ctx).is_taken())
///     .collect();
/// assert_eq!(seq, [true, true, false, true, true, false]);
/// ```
pub fn decide(
    behavior: &BranchBehavior,
    state: &mut BehaviorState,
    rng: &mut SmallRng,
    ctx: &DecisionContext,
) -> Direction {
    match (behavior, state) {
        (BranchBehavior::Bernoulli { taken_prob }, _) => {
            Direction::from_taken(rng.gen_bool(clamp_prob(*taken_prob)))
        }
        (BranchBehavior::LoopExit { trips }, BehaviorState::LoopIteration(i)) => {
            *i += 1;
            if *i >= *trips {
                *i = 0;
                Direction::NotTaken
            } else {
                Direction::Taken
            }
        }
        (BranchBehavior::Pattern { bits }, BehaviorState::PatternPosition(p)) => {
            let d = Direction::from_taken(bits[*p]);
            *p = (*p + 1) % bits.len();
            d
        }
        (BranchBehavior::Correlated { agree_prob }, _) => {
            if rng.gen_bool(clamp_prob(*agree_prob)) {
                ctx.last_outcome
            } else {
                ctx.last_outcome.flipped()
            }
        }
        (behavior, state) => unreachable!("state {state:?} does not match behavior {behavior:?}"),
    }
}

fn clamp_prob(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(behavior: &BranchBehavior, n: usize, seed: u64) -> Vec<bool> {
        let mut state = behavior.initial_state();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ctx = DecisionContext::default();
        (0..n)
            .map(|_| {
                let d = decide(behavior, &mut state, &mut rng, &ctx);
                ctx.last_outcome = d;
                d.is_taken()
            })
            .collect()
    }

    #[test]
    fn loop_exit_cycles() {
        let seq = run(&BranchBehavior::LoopExit { trips: 4 }, 8, 0);
        assert_eq!(seq, [true, true, true, false, true, true, true, false]);
    }

    #[test]
    fn loop_exit_with_one_trip_never_takes() {
        let seq = run(&BranchBehavior::LoopExit { trips: 1 }, 4, 0);
        assert_eq!(seq, [false, false, false, false]);
    }

    #[test]
    fn pattern_repeats() {
        let seq = run(
            &BranchBehavior::Pattern {
                bits: vec![true, false, false],
            },
            6,
            0,
        );
        assert_eq!(seq, [true, false, false, true, false, false]);
    }

    #[test]
    fn bernoulli_extremes_are_deterministic() {
        assert!(run(&BranchBehavior::Bernoulli { taken_prob: 1.0 }, 50, 1)
            .iter()
            .all(|&t| t));
        assert!(run(&BranchBehavior::Bernoulli { taken_prob: 0.0 }, 50, 1)
            .iter()
            .all(|&t| !t));
    }

    #[test]
    fn bernoulli_rate_approximates_probability() {
        let seq = run(&BranchBehavior::Bernoulli { taken_prob: 0.7 }, 10_000, 42);
        let rate = seq.iter().filter(|&&t| t).count() as f64 / seq.len() as f64;
        assert!((rate - 0.7).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn correlated_with_full_agreement_copies_history() {
        // With agree_prob 1.0 every outcome equals the previous outcome,
        // which starts as NotTaken and therefore stays NotTaken.
        let seq = run(&BranchBehavior::Correlated { agree_prob: 1.0 }, 10, 3);
        assert!(seq.iter().all(|&t| !t));
    }

    #[test]
    fn expected_rates() {
        assert_eq!(
            BranchBehavior::Bernoulli { taken_prob: 0.3 }.expected_taken_rate(),
            0.3
        );
        assert_eq!(
            BranchBehavior::LoopExit { trips: 4 }.expected_taken_rate(),
            0.75
        );
        assert_eq!(
            BranchBehavior::Pattern {
                bits: vec![true, true, false, false]
            }
            .expected_taken_rate(),
            0.5
        );
        assert_eq!(
            BranchBehavior::Correlated { agree_prob: 0.9 }.expected_taken_rate(),
            0.5
        );
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(BranchBehavior::Bernoulli { taken_prob: 1.5 }
            .validate()
            .is_err());
        assert!(BranchBehavior::LoopExit { trips: 0 }.validate().is_err());
        assert!(BranchBehavior::Pattern { bits: vec![] }.validate().is_err());
        assert!(BranchBehavior::Correlated { agree_prob: -0.1 }
            .validate()
            .is_err());
        assert!(BranchBehavior::LoopExit { trips: 2 }.validate().is_ok());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let b = BranchBehavior::Bernoulli { taken_prob: 0.5 };
        assert_eq!(run(&b, 100, 7), run(&b, 100, 7));
        assert_ne!(run(&b, 100, 7), run(&b, 100, 8));
    }
}
