//! Error type for program construction and interpretation.

use std::error::Error;
use std::fmt;

/// Error produced while validating or executing a synthetic program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A block, function, or branch reference pointed outside the program.
    DanglingReference {
        /// What kind of entity held the bad reference.
        holder: String,
        /// Description of the reference.
        reference: String,
    },
    /// Two static branches were declared with the same program counter.
    DuplicatePc {
        /// The duplicated address.
        pc: u64,
    },
    /// The call stack exceeded the configured maximum depth.
    CallDepthExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A behavior model was constructed with invalid parameters.
    InvalidBehavior {
        /// Description of the invalid parameter.
        reason: String,
    },
    /// A workload specification knob was out of range.
    InvalidSpec {
        /// Description of the invalid knob.
        reason: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::DanglingReference { holder, reference } => {
                write!(f, "{holder} references nonexistent {reference}")
            }
            WorkloadError::DuplicatePc { pc } => {
                write!(f, "duplicate branch pc {pc:#x}")
            }
            WorkloadError::CallDepthExceeded { limit } => {
                write!(f, "call depth exceeded limit of {limit}")
            }
            WorkloadError::InvalidBehavior { reason } => {
                write!(f, "invalid branch behavior: {reason}")
            }
            WorkloadError::InvalidSpec { reason } => {
                write!(f, "invalid workload spec: {reason}")
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = WorkloadError::DuplicatePc { pc: 0x40 };
        assert!(e.to_string().contains("0x40"));
        let e = WorkloadError::CallDepthExceeded { limit: 64 };
        assert!(e.to_string().contains("64"));
    }
}
