//! High-level construction of phase-structured programs.
//!
//! Real programs earn their small branch working sets from *phase
//! behaviour*: at any moment execution lives inside some loop nest or
//! subsystem whose branches interleave intensely with each other and only
//! incidentally with the rest of the program. [`ProgramBuilder`] builds
//! exactly that shape out of [`crate::cfg`] primitives:
//!
//! * [`ProgramBuilder::add_region`] creates a *region function* — a loop
//!   whose body is a chain of conditional constructs, one per planned
//!   branch. A planned branch is either a **diamond** (if/else that
//!   reconverges, so the branch executes every iteration) or a **guard**
//!   (if-then whose taken edge skips the following construct, giving
//!   downstream branches realistic sub-1.0 execution frequencies).
//! * [`ProgramBuilder::finish_with_schedule`] appends a `main` that calls
//!   region functions in a given order — the phase schedule — and exits.
//!
//! Branch program counters are assigned from a growing address cursor as
//! blocks are laid out, so address-space locality mirrors code layout and
//! the conventional `(pc >> 2) mod N` BHT indexing scheme collides the way
//! it does on real binaries.

use crate::behavior::BranchBehavior;
use crate::cfg::{FuncId, Program, Terminator};
use rand::rngs::SmallRng;
use rand::Rng;

/// A planned conditional branch inside a region body.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedBranch {
    /// Direction model for the branch.
    pub behavior: BranchBehavior,
    /// `true` makes this branch a guard: its taken edge skips the next
    /// construct in the region body instead of reconverging immediately.
    pub guard: bool,
}

/// Plan for one region function.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionPlan {
    /// Function name, for diagnostics.
    pub name: String,
    /// Trip count of the region's driving loop.
    pub loop_trips: u32,
    /// Body branches, executed in order each iteration.
    pub branches: Vec<PlannedBranch>,
    /// Inclusive range of straight-line instructions per basic block.
    pub block_instrs: (u32, u32),
}

/// Handle to a region added to a [`ProgramBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuiltRegion {
    /// The region's function.
    pub func: FuncId,
    /// Program counters of every branch in the region (loop branch first).
    pub branch_pcs: Vec<u64>,
}

/// Incrementally builds a phase-structured [`Program`].
///
/// # Example
///
/// ```
/// use bwsa_workload::behavior::BranchBehavior;
/// use bwsa_workload::builder::{PlannedBranch, ProgramBuilder, RegionPlan};
/// use bwsa_workload::interp::{execute, InterpConfig};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), bwsa_workload::WorkloadError> {
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut b = ProgramBuilder::new();
/// let region = b.add_region(
///     &RegionPlan {
///         name: "r0".into(),
///         loop_trips: 10,
///         branches: vec![PlannedBranch {
///             behavior: BranchBehavior::Bernoulli { taken_prob: 0.5 },
///             guard: false,
///         }],
///         block_instrs: (2, 6),
///     },
///     &mut rng,
/// );
/// let program = b.finish_with_schedule(&[region.func, region.func], &mut rng);
/// let trace = execute(&program, "demo", &InterpConfig::default())?;
/// // Two visits × 10 trips × (loop branch + body branch), minus nothing:
/// // the final not-taken loop exit also records.
/// assert_eq!(trace.len(), 2 * (10 + 9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    program: Program,
    addr_cursor: u64,
}

impl ProgramBuilder {
    /// Creates an empty builder with the address cursor at `0x1000`.
    pub fn new() -> Self {
        ProgramBuilder {
            program: Program::new(),
            addr_cursor: 0x1000,
        }
    }

    /// Read access to the program built so far.
    pub fn program(&self) -> &Program {
        &self.program
    }

    fn draw_instrs(&self, range: (u32, u32), rng: &mut SmallRng) -> u32 {
        let (lo, hi) = range;
        assert!(lo <= hi, "block_instrs range inverted");
        rng.gen_range(lo..=hi)
    }

    /// Lays out a block of `instrs` straight-line instructions plus its
    /// one-instruction terminator, returning the terminator's address.
    fn advance_addr(&mut self, instrs: u32) -> u64 {
        let term_addr = self.addr_cursor + u64::from(instrs) * 4;
        self.addr_cursor = term_addr + 4;
        term_addr
    }

    /// Adds a region function per `plan`. Block sizes are drawn from
    /// `rng`; everything else is deterministic in the plan.
    ///
    /// The region has the shape:
    ///
    /// ```text
    /// head: if loop_branch { body } else { return }
    /// body: construct(0); construct(1); ...; goto head
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the plan's `block_instrs` range is inverted.
    pub fn add_region(&mut self, plan: &RegionPlan, rng: &mut SmallRng) -> BuiltRegion {
        let p = &mut self.program;
        let ret = p.add_block(0, Terminator::Return);

        // Loop head, rewired once the body entry is known.
        let head_instrs = self.draw_instrs(plan.block_instrs, rng);
        let head_pc = self.advance_addr(head_instrs);
        let loop_decl = self.program.add_branch(
            head_pc,
            BranchBehavior::LoopExit {
                trips: plan.loop_trips,
            },
        );
        let head = self.program.add_block(head_instrs, Terminator::Return);

        let back_instrs = self.draw_instrs(plan.block_instrs, rng);
        self.advance_addr(back_instrs);
        let jump_back = self.program.add_block(back_instrs, Terminator::Jump(head));

        let mut branch_pcs = vec![head_pc];
        // Build body constructs in reverse so each knows its continuation.
        // entry_after      = entry of construct i+1 (or the back-jump)
        // entry_after_next = entry of construct i+2 (guard skip target)
        let mut entry_after = jump_back;
        let mut entry_after_next = jump_back;
        let mut rev_pcs = Vec::with_capacity(plan.branches.len());
        for planned in plan.branches.iter().rev() {
            let cond_instrs = self.draw_instrs(plan.block_instrs, rng);
            let pc = self.advance_addr(cond_instrs);
            let decl = self.program.add_branch(pc, planned.behavior.clone());
            rev_pcs.push(pc);
            let entry = if planned.guard {
                self.program.add_block(
                    cond_instrs,
                    Terminator::Branch {
                        decl,
                        taken: entry_after_next, // skip the next construct
                        not_taken: entry_after,
                    },
                )
            } else {
                let t_instrs = self.draw_instrs(plan.block_instrs, rng);
                self.advance_addr(t_instrs);
                let t_arm = self
                    .program
                    .add_block(t_instrs, Terminator::Jump(entry_after));
                let n_instrs = self.draw_instrs(plan.block_instrs, rng);
                self.advance_addr(n_instrs);
                let n_arm = self
                    .program
                    .add_block(n_instrs, Terminator::Jump(entry_after));
                self.program.add_block(
                    cond_instrs,
                    Terminator::Branch {
                        decl,
                        taken: t_arm,
                        not_taken: n_arm,
                    },
                )
            };
            entry_after_next = entry_after;
            entry_after = entry;
        }
        branch_pcs.extend(rev_pcs.into_iter().rev());

        self.program.set_terminator(
            head,
            Terminator::Branch {
                decl: loop_decl,
                taken: entry_after,
                not_taken: ret,
            },
        );
        let func = self.program.add_function(plan.name.clone(), head);
        BuiltRegion { func, branch_pcs }
    }

    /// Appends a `main` function calling `schedule` in order, sets it as
    /// the program entry, and returns the finished program.
    ///
    /// # Panics
    ///
    /// Panics if any scheduled function id is out of range (caught by the
    /// final validation) — callers should pass ids returned by
    /// [`ProgramBuilder::add_region`].
    pub fn finish_with_schedule(mut self, schedule: &[FuncId], rng: &mut SmallRng) -> Program {
        let exit = self.program.add_block(0, Terminator::Exit);
        // Build the call chain back-to-front.
        let mut next = exit;
        for &func in schedule.iter().rev() {
            let instrs = rng.gen_range(1..=8);
            self.advance_addr(instrs);
            next = self.program.add_block(
                instrs,
                Terminator::Call {
                    callee: func,
                    then: next,
                },
            );
        }
        let main = self.program.add_function("main", next);
        self.program.set_main(main);
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{execute, InterpConfig};
    use rand::SeedableRng;

    fn plan(n: usize, trips: u32, guards: &[usize]) -> RegionPlan {
        RegionPlan {
            name: "r".into(),
            loop_trips: trips,
            branches: (0..n)
                .map(|i| PlannedBranch {
                    behavior: BranchBehavior::Bernoulli { taken_prob: 0.5 },
                    guard: guards.contains(&i),
                })
                .collect(),
            block_instrs: (1, 4),
        }
    }

    #[test]
    fn region_declares_one_pc_per_branch_plus_loop() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut b = ProgramBuilder::new();
        let r = b.add_region(&plan(5, 3, &[]), &mut rng);
        assert_eq!(r.branch_pcs.len(), 6);
        let mut pcs = r.branch_pcs.clone();
        pcs.dedup();
        assert_eq!(pcs.len(), 6, "pcs are unique");
        assert_eq!(b.program().static_branch_count(), 6);
    }

    #[test]
    fn built_program_validates_and_runs() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut b = ProgramBuilder::new();
        let r0 = b.add_region(&plan(3, 4, &[]), &mut rng);
        let r1 = b.add_region(&plan(2, 2, &[1]), &mut rng);
        let program = b.finish_with_schedule(&[r0.func, r1.func, r0.func], &mut rng);
        assert!(program.validate().is_ok());
        let t = execute(&program, "x", &InterpConfig::default()).unwrap();
        assert!(!t.is_empty());
    }

    #[test]
    fn diamond_branches_execute_every_iteration() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut b = ProgramBuilder::new();
        let r = b.add_region(&plan(2, 5, &[]), &mut rng);
        let program = b.finish_with_schedule(&[r.func], &mut rng);
        let t = execute(&program, "x", &InterpConfig::default()).unwrap();
        // Loop branch 5× (4 taken + exit), body branches 4× each.
        assert_eq!(t.len(), 5 + 2 * 4);
    }

    #[test]
    fn guard_taken_skips_next_construct() {
        // Guard always taken → the following diamond never executes.
        let mut rng = SmallRng::seed_from_u64(4);
        let mut b = ProgramBuilder::new();
        let p = RegionPlan {
            name: "g".into(),
            loop_trips: 4,
            branches: vec![
                PlannedBranch {
                    behavior: BranchBehavior::Bernoulli { taken_prob: 1.0 },
                    guard: true,
                },
                PlannedBranch {
                    behavior: BranchBehavior::Bernoulli { taken_prob: 0.5 },
                    guard: false,
                },
                PlannedBranch {
                    behavior: BranchBehavior::Bernoulli { taken_prob: 1.0 },
                    guard: false,
                },
            ],
            block_instrs: (1, 3),
        };
        let r = b.add_region(&p, &mut rng);
        let program = b.finish_with_schedule(&[r.func], &mut rng);
        let t = execute(&program, "x", &InterpConfig::default()).unwrap();
        let count = |pc: u64| t.records().iter().filter(|r| r.pc.addr() == pc).count();
        assert_eq!(
            count(r.branch_pcs[1]),
            3,
            "guard runs each of 3 full iterations"
        );
        assert_eq!(count(r.branch_pcs[2]), 0, "skipped construct never runs");
        assert_eq!(
            count(r.branch_pcs[3]),
            3,
            "construct after the skip still runs"
        );
    }

    #[test]
    fn guard_not_taken_falls_through() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut b = ProgramBuilder::new();
        let p = RegionPlan {
            name: "g".into(),
            loop_trips: 3,
            branches: vec![
                PlannedBranch {
                    behavior: BranchBehavior::Bernoulli { taken_prob: 0.0 },
                    guard: true,
                },
                PlannedBranch {
                    behavior: BranchBehavior::Bernoulli { taken_prob: 0.5 },
                    guard: false,
                },
            ],
            block_instrs: (1, 3),
        };
        let r = b.add_region(&p, &mut rng);
        let program = b.finish_with_schedule(&[r.func], &mut rng);
        let t = execute(&program, "x", &InterpConfig::default()).unwrap();
        let count = |pc: u64| t.records().iter().filter(|r| r.pc.addr() == pc).count();
        assert_eq!(
            count(r.branch_pcs[2]),
            2,
            "guarded construct runs when guard falls through"
        );
    }

    #[test]
    fn trailing_guard_skips_to_backedge() {
        // A guard as the last construct skips "past the end": both edges
        // must still reach the back-jump without dangling references.
        let mut rng = SmallRng::seed_from_u64(6);
        let mut b = ProgramBuilder::new();
        let r = b.add_region(&plan(1, 3, &[0]), &mut rng);
        let program = b.finish_with_schedule(&[r.func], &mut rng);
        assert!(program.validate().is_ok());
        let t = execute(&program, "x", &InterpConfig::default()).unwrap();
        assert_eq!(
            t.records()
                .iter()
                .filter(|x| x.pc.addr() == r.branch_pcs[1])
                .count(),
            2
        );
    }

    #[test]
    fn structure_is_deterministic_in_seed() {
        let build = || {
            let mut rng = SmallRng::seed_from_u64(9);
            let mut b = ProgramBuilder::new();
            let r = b.add_region(&plan(4, 3, &[1]), &mut rng);
            (r.branch_pcs.clone(), b.program().clone())
        };
        let (pcs_a, prog_a) = build();
        let (pcs_b, prog_b) = build();
        assert_eq!(pcs_a, pcs_b);
        assert_eq!(prog_a, prog_b);
    }

    #[test]
    fn empty_schedule_yields_branchless_program() {
        let mut rng = SmallRng::seed_from_u64(10);
        let b = ProgramBuilder::new();
        let program = b.finish_with_schedule(&[], &mut rng);
        let t = execute(&program, "x", &InterpConfig::default()).unwrap();
        assert!(t.is_empty());
    }
}
