//! The paper's benchmark suite, reimagined as synthetic workload profiles.
//!
//! Table 1 of the paper evaluates six SPECint95 benchmarks and seven
//! common UNIX applications. Each [`Benchmark`] here is a
//! [`WorkloadSpec`] whose knobs are tuned so the *relative* control-flow
//! characteristics track the original: `gcc`/`python` have thousands of
//! static branches and large working sets, `compress`/`ijpeg`/`pgp` are
//! small and loop-dominated, and so on. Dynamic-branch budgets are scaled
//! down ~20× from the paper's runs (which went up to 500M instructions)
//! to keep the whole harness laptop-scale; the shapes the paper reports
//! are preserved, as EXPERIMENTS.md documents.
//!
//! Each benchmark has two input sets ([`InputSet::A`] and [`InputSet::B`])
//! so the §5.2 experiments — input sensitivity (`perl_a`/`perl_b`,
//! `ss_a`/`ss_b`) and cumulative profiles — can be reproduced.
//!
//! # Example
//!
//! ```
//! use bwsa_workload::suite::{Benchmark, InputSet};
//!
//! for bench in Benchmark::ALL {
//!     assert!(bench.spec().validate().is_ok(), "{bench}");
//! }
//! let t = Benchmark::Pgp.generate_scaled(InputSet::A, 0.01);
//! assert!(!t.is_empty());
//! ```

use crate::spec::{BiasMix, InputParams, ScheduleModel, Workload, WorkloadSpec};
use bwsa_trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which profiling/evaluation input to run a benchmark with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputSet {
    /// The primary input (the one named in Table 1).
    A,
    /// A secondary input exercising a different mix of program regions.
    B,
}

impl InputSet {
    /// Suffix used in experiment labels (`perl_a`, `perl_b`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            InputSet::A => "a",
            InputSet::B => "b",
        }
    }
}

/// One of the thirteen paper benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Compress,
    Gcc,
    Ijpeg,
    Li,
    M88ksim,
    Perl,
    Chess,
    Gs,
    Pgp,
    Plot,
    Python,
    Ss,
    Tex,
}

impl Benchmark {
    /// All benchmarks, in the paper's Table 1 order.
    pub const ALL: [Benchmark; 13] = [
        Benchmark::Compress,
        Benchmark::Gcc,
        Benchmark::Ijpeg,
        Benchmark::Li,
        Benchmark::M88ksim,
        Benchmark::Perl,
        Benchmark::Chess,
        Benchmark::Gs,
        Benchmark::Pgp,
        Benchmark::Plot,
        Benchmark::Python,
        Benchmark::Ss,
        Benchmark::Tex,
    ];

    /// The benchmark's name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Compress => "compress",
            Benchmark::Gcc => "gcc",
            Benchmark::Ijpeg => "ijpeg",
            Benchmark::Li => "li",
            Benchmark::M88ksim => "m88ksim",
            Benchmark::Perl => "perl",
            Benchmark::Chess => "chess",
            Benchmark::Gs => "gs",
            Benchmark::Pgp => "pgp",
            Benchmark::Plot => "plot",
            Benchmark::Python => "python",
            Benchmark::Ss => "ss",
            Benchmark::Tex => "tex",
        }
    }

    /// The input-set label, mirroring Table 1 for input A.
    pub fn input_name(self, set: InputSet) -> &'static str {
        match (self, set) {
            (Benchmark::Compress, InputSet::A) => "compress_small.in",
            (Benchmark::Compress, InputSet::B) => "compress_big.in",
            (Benchmark::Gcc, InputSet::A) => "jump.i",
            (Benchmark::Gcc, InputSet::B) => "recog.i",
            (Benchmark::Ijpeg, InputSet::A) => "vigo.ppm",
            (Benchmark::Ijpeg, InputSet::B) => "penguin.ppm",
            (Benchmark::Li, InputSet::A) => "li_ref.out",
            (Benchmark::Li, InputSet::B) => "li_train.out",
            (Benchmark::M88ksim, InputSet::A) => "ctl.big",
            (Benchmark::M88ksim, InputSet::B) => "ctl.small",
            (Benchmark::Perl, InputSet::A) => "scrabbl.in",
            (Benchmark::Perl, InputSet::B) => "primes.in",
            (Benchmark::Chess, InputSet::A) => "sim.in",
            (Benchmark::Chess, InputSet::B) => "mate.in",
            (Benchmark::Gs, InputSet::A) => "sigmetrics94.ps",
            (Benchmark::Gs, InputSet::B) => "micro31.ps",
            (Benchmark::Pgp, InputSet::A) => "IJPP97.ps",
            (Benchmark::Pgp, InputSet::B) => "hpca98.ps",
            (Benchmark::Plot, InputSet::A) => "surface2.dem",
            (Benchmark::Plot, InputSet::B) => "contour1.dem",
            (Benchmark::Python, InputSet::A) => "yarn.tests.py",
            (Benchmark::Python, InputSet::B) => "regr.tests.py",
            (Benchmark::Ss, InputSet::A) => "test-fmath",
            (Benchmark::Ss, InputSet::B) => "test-math",
            (Benchmark::Tex, InputSet::A) => "output-PACT96.tex",
            (Benchmark::Tex, InputSet::B) => "output-MICRO31.tex",
        }
    }

    /// The workload profile (static structure + budgets) of this benchmark.
    pub fn spec(self) -> WorkloadSpec {
        // Shared defaults; per-benchmark overrides below.
        let base = |name: &str,
                    seed: u64,
                    regions: usize,
                    bpr: (usize, usize),
                    budget: u64|
         -> WorkloadSpec {
            WorkloadSpec {
                name: name.to_owned(),
                structure_seed: seed,
                regions,
                branches_per_region: bpr,
                trips: (60, 150),
                bias: BiasMix {
                    taken: 0.32,
                    not_taken: 0.22,
                },
                pattern_frac: 0.50,
                correlated_frac: 0.08,
                guard_frac: 0.20,
                block_instrs: (2, 14),
                target_dynamic_branches: budget,
                schedule: ScheduleModel::default(),
            }
        };
        match self {
            // Small, loop-dominated compressor: few static branches,
            // long-running inner loops, strongly biased branches.
            Benchmark::Compress => WorkloadSpec {
                trips: (110, 260),
                bias: BiasMix {
                    taken: 0.38,
                    not_taken: 0.25,
                },
                ..base("compress", 0xC0, 14, (22, 58), 400_000)
            },
            // Huge optimizer: many regions, very large working sets.
            Benchmark::Gcc => WorkloadSpec {
                trips: (80, 180),
                bias: BiasMix {
                    taken: 0.30,
                    not_taken: 0.20,
                },
                ..base("gcc", 0x6CC, 24, (270, 400), 2_500_000)
            },
            // Image codec: small working sets of mostly regular branches.
            Benchmark::Ijpeg => WorkloadSpec {
                trips: (120, 280),
                pattern_frac: 0.6,
                bias: BiasMix {
                    taken: 0.40,
                    not_taken: 0.22,
                },
                ..base("ijpeg", 0x13E6, 24, (18, 40), 400_000)
            },
            // Lisp interpreter: mid-sized dispatch-heavy working sets.
            Benchmark::Li => base("li", 0x11, 12, (150, 210), 800_000),
            // Microprocessor simulator: mid-sized regular working sets.
            Benchmark::M88ksim => WorkloadSpec {
                pattern_frac: 0.55,
                ..base("m88ksim", 0x88, 14, (115, 175), 800_000)
            },
            // Perl interpreter: many small working sets.
            Benchmark::Perl => base("perl", 0x9E41, 21, (35, 70), 450_000),
            // Chess engine: large search working sets, unbiased branches.
            Benchmark::Chess => WorkloadSpec {
                bias: BiasMix {
                    taken: 0.26,
                    not_taken: 0.18,
                },
                ..base("chess", 0xC4E5, 20, (190, 310), 1_800_000)
            },
            // Ghostscript: many mid-to-large rendering working sets.
            Benchmark::Gs => base("gs", 0x65, 30, (150, 250), 2_000_000),
            // PGP: small crypto-kernel working sets, heavy bias.
            Benchmark::Pgp => WorkloadSpec {
                trips: (100, 220),
                bias: BiasMix {
                    taken: 0.42,
                    not_taken: 0.24,
                },
                ..base("pgp", 0x969, 17, (30, 60), 350_000)
            },
            // Gnuplot: mid-sized numeric working sets.
            Benchmark::Plot => base("plot", 0x107, 20, (110, 180), 1_000_000),
            // Python interpreter: large dispatch working sets.
            Benchmark::Python => WorkloadSpec {
                bias: BiasMix {
                    taken: 0.28,
                    not_taken: 0.20,
                },
                ..base("python", 0x9c, 24, (280, 400), 2_500_000)
            },
            // SimpleScalar itself: large decode/dispatch working sets.
            Benchmark::Ss => base("ss", 0x55, 20, (230, 340), 1_800_000),
            // TeX: mid-sized working sets, biased error-checking branches.
            Benchmark::Tex => WorkloadSpec {
                bias: BiasMix {
                    taken: 0.40,
                    not_taken: 0.24,
                },
                ..base("tex", 0x7E, 25, (120, 200), 1_400_000)
            },
        }
    }

    /// Input parameters for one of this benchmark's input sets.
    ///
    /// Input B uses a different seed and a more concentrated region mix,
    /// reproducing the paper's observation that profiles from different
    /// inputs exercise different parts of the program.
    pub fn input(self, set: InputSet) -> InputParams {
        let base_seed = (self as u64 + 1) * 0x0123_4567_89AB_CDEF;
        match set {
            InputSet::A => InputParams {
                name: self.input_name(set).to_owned(),
                seed: base_seed,
                concentration: 0.8,
            },
            InputSet::B => InputParams {
                name: self.input_name(set).to_owned(),
                seed: base_seed ^ 0xFFFF_0000_FFFF_0000,
                concentration: 3.5,
            },
        }
    }

    /// Instantiates the static structure.
    ///
    /// # Panics
    ///
    /// Never in practice: all built-in specs validate (tested).
    pub fn workload(self) -> Workload {
        self.spec().instantiate().expect("built-in specs validate")
    }

    /// Generates the full-budget trace for an input set.
    pub fn generate(self, set: InputSet) -> Trace {
        self.workload().trace(&self.input(set))
    }

    /// Generates a trace with the dynamic-branch budget scaled by `scale`
    /// (e.g. `0.01` for quick tests).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn generate_scaled(self, set: InputSet, scale: f64) -> Trace {
        self.workload().trace_scaled(&self.input(set), scale)
    }

    /// The subset of benchmarks reported in the paper's Table 2.
    pub const TABLE2: [Benchmark; 11] = [
        Benchmark::Compress,
        Benchmark::Gcc,
        Benchmark::Ijpeg,
        Benchmark::Li,
        Benchmark::M88ksim,
        Benchmark::Perl,
        Benchmark::Chess,
        Benchmark::Pgp,
        Benchmark::Plot,
        Benchmark::Python,
        Benchmark::Ss,
    ];
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for b in Benchmark::ALL {
            assert!(b.spec().validate().is_ok(), "{b}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Benchmark::ALL.len());
    }

    #[test]
    fn input_names_differ_between_sets() {
        for b in Benchmark::ALL {
            assert_ne!(b.input_name(InputSet::A), b.input_name(InputSet::B));
            assert_ne!(b.input(InputSet::A).seed, b.input(InputSet::B).seed);
        }
    }

    #[test]
    fn small_trace_generates_quickly_and_deterministically() {
        let a = Benchmark::Compress.generate_scaled(InputSet::A, 0.01);
        let b = Benchmark::Compress.generate_scaled(InputSet::A, 0.01);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4000);
    }

    #[test]
    fn static_branch_counts_scale_with_benchmark() {
        let compress = Benchmark::Compress.workload().static_branch_count();
        let gcc = Benchmark::Gcc.workload().static_branch_count();
        assert!(compress > 200, "compress has {compress}");
        assert!(compress < 1000, "compress has {compress}");
        assert!(gcc > 6000, "gcc has {gcc}");
    }

    #[test]
    fn trace_name_mentions_benchmark_and_input() {
        let t = Benchmark::Perl.generate_scaled(InputSet::A, 0.01);
        assert_eq!(t.meta().name, "perl:scrabbl.in");
    }

    #[test]
    fn table2_subset_is_within_all() {
        for b in Benchmark::TABLE2 {
            assert!(Benchmark::ALL.contains(&b));
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Gcc.to_string(), "gcc");
    }
}
