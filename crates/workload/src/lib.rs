//! Synthetic program substrate: the workspace's stand-in for
//! SimpleScalar executing SPECint95 and UNIX applications.
//!
//! The paper profiles real binaries to obtain dynamic conditional-branch
//! traces. This crate produces equivalent traces from *synthetic programs*
//! with controlled, realistic control-flow structure:
//!
//! * [`cfg`] — an executable program model: basic blocks, conditional
//!   branches, calls, and returns, each branch carrying a [`behavior`]
//!   model (loop exits, biased and unbiased Bernoulli branches, periodic
//!   patterns, globally correlated branches).
//! * [`interp`] — a deterministic interpreter that runs a program and
//!   emits a [`bwsa_trace::Trace`], counting instructions so that branch
//!   records carry the paper's §4.1 instruction-count timestamps.
//! * [`spec`] / [`builder`] — a knob-driven generator of *phase
//!   structured* programs: a driver walks through region loops, each
//!   region's branches interleave heavily with each other and only weakly
//!   across regions. This is precisely the structure that gives real
//!   programs their small branch working sets.
//! * [`suite`] — thirteen ready-made workload profiles mirroring the
//!   paper's benchmarks (Table 1), each with two input sets so the §5.2
//!   profile-sensitivity and cumulative-profile experiments can run.
//!
//! # Example
//!
//! ```
//! use bwsa_workload::suite::{Benchmark, InputSet};
//!
//! let trace = Benchmark::Compress.generate_scaled(InputSet::A, 0.01);
//! assert!(trace.len() > 1_000);
//! assert!(trace.static_branch_count() > 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod behavior;
pub mod builder;
pub mod cfg;
mod error;
pub mod interp;
pub mod spec;
pub mod suite;

pub use error::WorkloadError;
