//! Executable control-flow-graph program model.
//!
//! A [`Program`] is a set of basic [`Block`]s grouped into [`Function`]s.
//! Each block executes `instr_count` straight-line instructions and ends
//! in a [`Terminator`]; conditional branches reference a [`BranchDecl`]
//! carrying the branch's unique program counter and its
//! [`crate::behavior::BranchBehavior`].
//!
//! The model is deliberately minimal — there is no data state; branch
//! directions come from behavior models — but its *control* semantics are
//! real: calls push a return continuation, loops actually iterate, and the
//! interpreter counts every instruction so trace timestamps match the
//! paper's definition.

use crate::behavior::BranchBehavior;
use crate::WorkloadError;
use bwsa_trace::Pc;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Index of a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Index of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Index of a static branch declaration within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BranchRef(pub u32);

/// Declaration of one static conditional branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchDecl {
    /// Unique address of the branch instruction.
    pub pc: Pc,
    /// Direction model.
    pub behavior: BranchBehavior,
}

/// How control leaves a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch: `decl` decides between the two successors.
    Branch {
        /// The static branch resolving this terminator.
        decl: BranchRef,
        /// Successor when taken.
        taken: BlockId,
        /// Successor when not taken (fall-through).
        not_taken: BlockId,
    },
    /// Call `callee`; on return, continue at `then`.
    Call {
        /// Called function.
        callee: FuncId,
        /// Continuation block in the caller.
        then: BlockId,
    },
    /// Return to the caller's continuation (or end the program from main).
    Return,
    /// End the program immediately.
    Exit,
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Number of non-control instructions executed before the terminator.
    pub instr_count: u32,
    /// The block's exit.
    pub terminator: Terminator,
}

/// A function: a named entry block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Human-readable name (for diagnostics only).
    pub name: String,
    /// Entry block.
    pub entry: BlockId,
}

/// A complete executable program.
///
/// Construct with [`Program::new`] + the `add_*` methods (or the
/// higher-level [`crate::builder`]), then [`Program::validate`] before
/// interpretation.
///
/// # Example
///
/// ```
/// use bwsa_workload::behavior::BranchBehavior;
/// use bwsa_workload::cfg::{Program, Terminator};
///
/// // while (i++ < 3) {}  — a single loop block branching back to itself.
/// let mut p = Program::new();
/// let b = p.add_branch(0x400, BranchBehavior::LoopExit { trips: 3 });
/// let exit = p.add_block(0, Terminator::Exit);
/// let head = p.add_block(4, Terminator::Branch { decl: b, taken: exit, not_taken: exit });
/// // Fix up: taken loops back to the head.
/// p.set_terminator(head, Terminator::Branch { decl: b, taken: head, not_taken: exit });
/// let main = p.add_function("main", head);
/// p.set_main(main);
/// assert!(p.validate().is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    blocks: Vec<Block>,
    branches: Vec<BranchDecl>,
    functions: Vec<Function>,
    main: Option<FuncId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a static branch with a unique pc and returns its handle.
    pub fn add_branch(&mut self, pc: u64, behavior: BranchBehavior) -> BranchRef {
        let r = BranchRef(self.branches.len() as u32);
        self.branches.push(BranchDecl {
            pc: Pc::new(pc),
            behavior,
        });
        r
    }

    /// Adds a basic block and returns its id.
    pub fn add_block(&mut self, instr_count: u32, terminator: Terminator) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            instr_count,
            terminator,
        });
        id
    }

    /// Replaces a block's terminator (for wiring up loops).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn set_terminator(&mut self, block: BlockId, terminator: Terminator) {
        self.blocks[block.0 as usize].terminator = terminator;
    }

    /// Adds a function and returns its id.
    pub fn add_function(&mut self, name: impl Into<String>, entry: BlockId) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(Function {
            name: name.into(),
            entry,
        });
        id
    }

    /// Sets the program entry function.
    pub fn set_main(&mut self, main: FuncId) {
        self.main = Some(main);
    }

    /// The program entry function, if set.
    pub fn main(&self) -> Option<FuncId> {
        self.main
    }

    /// The blocks, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The static branch declarations, indexed by [`BranchRef`].
    pub fn branches(&self) -> &[BranchDecl] {
        &self.branches
    }

    /// The functions, indexed by [`FuncId`].
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Looks up a branch declaration.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn branch(&self, r: BranchRef) -> &BranchDecl {
        &self.branches[r.0 as usize]
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Number of static conditional branches declared.
    pub fn static_branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Checks structural integrity: every reference in range, a main
    /// function set, unique branch pcs, and valid behavior parameters.
    ///
    /// # Errors
    ///
    /// Returns the first [`WorkloadError`] found.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let check_block = |holder: &str, id: BlockId| {
            if id.0 as usize >= self.blocks.len() {
                Err(WorkloadError::DanglingReference {
                    holder: holder.to_owned(),
                    reference: format!("block {}", id.0),
                })
            } else {
                Ok(())
            }
        };
        let main = self.main.ok_or_else(|| WorkloadError::DanglingReference {
            holder: "program".into(),
            reference: "main function (unset)".into(),
        })?;
        if main.0 as usize >= self.functions.len() {
            return Err(WorkloadError::DanglingReference {
                holder: "program".into(),
                reference: format!("main function {}", main.0),
            });
        }
        for (i, f) in self.functions.iter().enumerate() {
            check_block(&format!("function {} ({})", i, f.name), f.entry)?;
        }
        for (i, b) in self.blocks.iter().enumerate() {
            let holder = format!("block {i}");
            match b.terminator {
                Terminator::Jump(t) => check_block(&holder, t)?,
                Terminator::Branch {
                    decl,
                    taken,
                    not_taken,
                } => {
                    if decl.0 as usize >= self.branches.len() {
                        return Err(WorkloadError::DanglingReference {
                            holder,
                            reference: format!("branch decl {}", decl.0),
                        });
                    }
                    check_block(&holder, taken)?;
                    check_block(&holder, not_taken)?;
                }
                Terminator::Call { callee, then } => {
                    if callee.0 as usize >= self.functions.len() {
                        return Err(WorkloadError::DanglingReference {
                            holder,
                            reference: format!("function {}", callee.0),
                        });
                    }
                    check_block(&holder, then)?;
                }
                Terminator::Return | Terminator::Exit => {}
            }
        }
        let mut pcs = HashSet::new();
        for decl in &self.branches {
            if !pcs.insert(decl.pc) {
                return Err(WorkloadError::DuplicatePc { pc: decl.pc.addr() });
            }
            decl.behavior.validate()?;
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} functions, {} blocks, {} static branches",
            self.functions.len(),
            self.blocks.len(),
            self.branches.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_valid() -> Program {
        let mut p = Program::new();
        let exit = p.add_block(1, Terminator::Exit);
        let main = p.add_function("main", exit);
        p.set_main(main);
        p
    }

    #[test]
    fn minimal_program_validates() {
        assert!(minimal_valid().validate().is_ok());
    }

    #[test]
    fn missing_main_fails() {
        let mut p = Program::new();
        p.add_block(1, Terminator::Exit);
        assert!(matches!(
            p.validate(),
            Err(WorkloadError::DanglingReference { .. })
        ));
    }

    #[test]
    fn dangling_jump_fails() {
        let mut p = minimal_valid();
        p.add_block(1, Terminator::Jump(BlockId(99)));
        assert!(p.validate().is_err());
    }

    #[test]
    fn dangling_branch_decl_fails() {
        let mut p = minimal_valid();
        let b0 = BlockId(0);
        p.add_block(
            1,
            Terminator::Branch {
                decl: BranchRef(5),
                taken: b0,
                not_taken: b0,
            },
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn dangling_callee_fails() {
        let mut p = minimal_valid();
        p.add_block(
            1,
            Terminator::Call {
                callee: FuncId(9),
                then: BlockId(0),
            },
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn duplicate_pc_fails() {
        let mut p = minimal_valid();
        p.add_branch(0x100, BranchBehavior::LoopExit { trips: 2 });
        p.add_branch(0x100, BranchBehavior::LoopExit { trips: 3 });
        assert_eq!(p.validate(), Err(WorkloadError::DuplicatePc { pc: 0x100 }));
    }

    #[test]
    fn invalid_behavior_fails_validation() {
        let mut p = minimal_valid();
        p.add_branch(0x100, BranchBehavior::LoopExit { trips: 0 });
        assert!(matches!(
            p.validate(),
            Err(WorkloadError::InvalidBehavior { .. })
        ));
    }

    #[test]
    fn set_terminator_rewires() {
        let mut p = minimal_valid();
        let b = p.add_block(2, Terminator::Exit);
        p.set_terminator(b, Terminator::Jump(BlockId(0)));
        assert_eq!(p.block(b).terminator, Terminator::Jump(BlockId(0)));
    }

    #[test]
    fn display_counts_entities() {
        let p = minimal_valid();
        assert_eq!(
            p.to_string(),
            "program: 1 functions, 1 blocks, 0 static branches"
        );
    }
}
