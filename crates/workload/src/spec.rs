//! Knob-driven workload specifications.
//!
//! A [`WorkloadSpec`] describes a program family: how many phase regions,
//! how many branches per region, the loop trip counts, the bias mix, and
//! the dynamic-branch budget. [`WorkloadSpec::instantiate`] builds the
//! *static structure* (region functions, branch pcs, behaviors) from the
//! structure seed alone, so it is identical for every input set; a
//! [`Workload`] then produces per-input traces by drawing a phase
//! *schedule* from the input's seed and interpreting the program.
//!
//! Input sets model the paper's §5.2 observation that "different areas of
//! the program [are] exercised depending on the input data set": each
//! input draws its own region-popularity weights, and a high
//! [`InputParams::concentration`] focuses execution on a few regions.

use crate::behavior::BranchBehavior;
use crate::builder::{BuiltRegion, PlannedBranch, ProgramBuilder, RegionPlan};
use crate::interp::{execute, InterpConfig};
use crate::WorkloadError;
use bwsa_trace::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fractions of body branches that are highly biased.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasMix {
    /// Fraction biased towards taken (taken rate ≈ 0.995).
    pub taken: f64,
    /// Fraction biased towards not taken (taken rate ≈ 0.005).
    pub not_taken: f64,
}

impl BiasMix {
    /// Validates that the fractions are sane.
    fn validate(&self) -> Result<(), WorkloadError> {
        if self.taken < 0.0 || self.not_taken < 0.0 || self.taken + self.not_taken > 1.0 {
            return Err(WorkloadError::InvalidSpec {
                reason: format!(
                    "bias fractions must be non-negative and sum to <= 1, got {} + {}",
                    self.taken, self.not_taken
                ),
            });
        }
        Ok(())
    }
}

/// How the phase schedule walks between regions.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ScheduleModel {
    /// Each visit picks a region independently by popularity weight.
    #[default]
    Iid,
    /// A Markov walk: with probability `self_loop` the next visit stays
    /// in the current region (longer dwell times, fewer working-set
    /// switches); otherwise a region is drawn by popularity weight.
    Markov {
        /// Probability in `[0, 1)` of revisiting the current region.
        self_loop: f64,
    },
}

/// Description of a synthetic benchmark family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Benchmark name.
    pub name: String,
    /// Seed fixing the static structure (regions, pcs, behaviors).
    pub structure_seed: u64,
    /// Number of phase regions.
    pub regions: usize,
    /// Inclusive range of body branches per region.
    pub branches_per_region: (usize, usize),
    /// Inclusive range of loop trip counts per region.
    pub trips: (u32, u32),
    /// Bias mix of body branches.
    pub bias: BiasMix,
    /// Among unbiased branches: fraction with short periodic patterns.
    pub pattern_frac: f64,
    /// Among unbiased branches: fraction correlated with global history.
    pub correlated_frac: f64,
    /// Fraction of body branches that act as guards (skip the next
    /// construct when taken).
    pub guard_frac: f64,
    /// Inclusive range of straight-line instructions per block.
    pub block_instrs: (u32, u32),
    /// Dynamic conditional-branch budget per generated trace.
    pub target_dynamic_branches: u64,
    /// Phase-schedule model (defaults to independent draws).
    #[serde(default)]
    pub schedule: ScheduleModel,
}

impl WorkloadSpec {
    /// Checks all knobs for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] describing the first bad knob.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let bad = |reason: String| Err(WorkloadError::InvalidSpec { reason });
        if self.regions == 0 {
            return bad("at least one region required".into());
        }
        if self.branches_per_region.0 > self.branches_per_region.1
            || self.branches_per_region.0 == 0
        {
            return bad(format!(
                "branches_per_region range {:?} invalid",
                self.branches_per_region
            ));
        }
        if self.trips.0 > self.trips.1 || self.trips.0 == 0 {
            return bad(format!("trips range {:?} invalid", self.trips));
        }
        if self.block_instrs.0 > self.block_instrs.1 {
            return bad(format!(
                "block_instrs range {:?} invalid",
                self.block_instrs
            ));
        }
        self.bias.validate()?;
        for (label, v) in [
            ("pattern_frac", self.pattern_frac),
            ("correlated_frac", self.correlated_frac),
            ("guard_frac", self.guard_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return bad(format!("{label} {v} outside [0,1]"));
            }
        }
        if self.pattern_frac + self.correlated_frac > 1.0 {
            return bad("pattern_frac + correlated_frac exceed 1".into());
        }
        if self.target_dynamic_branches == 0 {
            return bad("target_dynamic_branches must be positive".into());
        }
        if let ScheduleModel::Markov { self_loop } = self.schedule {
            if !(0.0..1.0).contains(&self_loop) {
                return bad(format!("markov self_loop {self_loop} outside [0,1)"));
            }
        }
        Ok(())
    }

    fn draw_behavior(&self, rng: &mut SmallRng) -> BranchBehavior {
        let roll: f64 = rng.gen();
        if roll < self.bias.taken {
            BranchBehavior::Bernoulli {
                taken_prob: rng.gen_range(0.992..0.9999),
            }
        } else if roll < self.bias.taken + self.bias.not_taken {
            BranchBehavior::Bernoulli {
                taken_prob: rng.gen_range(0.0001..0.008),
            }
        } else {
            let kind: f64 = rng.gen();
            if kind < self.pattern_frac {
                // A short mixed pattern: flip at least once so the branch
                // is genuinely unbiased and locally predictable.
                let len = rng.gen_range(2..=8usize);
                let mut bits: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
                let first = bits[0];
                if bits.iter().all(|&b| b == first) {
                    let i = rng.gen_range(0..len);
                    bits[i] = !first;
                }
                BranchBehavior::Pattern { bits }
            } else if kind < self.pattern_frac + self.correlated_frac {
                BranchBehavior::Correlated {
                    agree_prob: rng.gen_range(0.7..0.95),
                }
            } else {
                BranchBehavior::Bernoulli {
                    taken_prob: rng.gen_range(0.1..0.9),
                }
            }
        }
    }

    /// Builds the static structure of this benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] if [`WorkloadSpec::validate`]
    /// fails.
    pub fn instantiate(&self) -> Result<Workload, WorkloadError> {
        self.validate()?;
        let mut rng = SmallRng::seed_from_u64(self.structure_seed);
        let mut builder = ProgramBuilder::new();
        let mut regions = Vec::with_capacity(self.regions);
        let mut per_visit = Vec::with_capacity(self.regions);
        for i in 0..self.regions {
            let k = rng.gen_range(self.branches_per_region.0..=self.branches_per_region.1);
            let trips = rng.gen_range(self.trips.0..=self.trips.1);
            let branches = (0..k)
                .map(|_| PlannedBranch {
                    behavior: self.draw_behavior(&mut rng),
                    guard: rng.gen_bool(self.guard_frac),
                })
                .collect();
            let plan = RegionPlan {
                name: format!("region_{i}"),
                loop_trips: trips,
                branches,
                block_instrs: self.block_instrs,
            };
            let built = builder.add_region(&plan, &mut rng);
            // Rough expected dynamic branches per visit: the loop branch
            // fires `trips` times and each body branch close to `trips - 1`
            // times (guards skip some; 0.9 is a serviceable fudge).
            let est = f64::from(trips) + f64::from(trips - 1) * k as f64 * 0.9;
            per_visit.push(est.max(1.0));
            regions.push(built);
        }
        Ok(Workload {
            spec: self.clone(),
            builder,
            regions,
            per_visit,
        })
    }
}

/// Parameters identifying one profiling/evaluation input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputParams {
    /// Input-set label appended to the trace name (e.g. `"ref.in"`).
    pub name: String,
    /// Seed for schedule and dynamics.
    pub seed: u64,
    /// Region-popularity skew. `0.0` visits regions uniformly; larger
    /// values concentrate execution on fewer regions ("different areas of
    /// the program exercised", §5.2). Typical values: 0.5–3.0.
    pub concentration: f64,
}

impl InputParams {
    /// Uniform input with a seed.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        InputParams {
            name: name.into(),
            seed,
            concentration: 0.8,
        }
    }
}

/// An instantiated benchmark: fixed static structure, ready to generate
/// per-input traces.
#[derive(Debug, Clone)]
pub struct Workload {
    spec: WorkloadSpec,
    builder: ProgramBuilder,
    regions: Vec<BuiltRegion>,
    per_visit: Vec<f64>,
}

impl Workload {
    /// The spec this workload was instantiated from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Branch pcs per region (loop branch first), mirroring the structure.
    pub fn region_pcs(&self) -> impl Iterator<Item = &[u64]> + '_ {
        self.regions.iter().map(|r| r.branch_pcs.as_slice())
    }

    /// Total static conditional branches in the program.
    pub fn static_branch_count(&self) -> usize {
        self.builder.program().static_branch_count()
    }

    /// Generates the dynamic branch trace for one input.
    ///
    /// The trace is deterministic in `(spec, input)` and capped at the
    /// spec's `target_dynamic_branches`.
    pub fn trace(&self, input: &InputParams) -> Trace {
        self.trace_scaled(input, 1.0)
    }

    /// Like [`Workload::trace`] but with the dynamic-branch budget scaled
    /// by `scale` (useful for fast tests: `0.01` runs 1% of the budget).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn trace_scaled(&self, input: &InputParams, scale: f64) -> Trace {
        assert!(scale > 0.0, "scale must be positive");
        let budget = ((self.spec.target_dynamic_branches as f64 * scale).ceil() as u64).max(1);
        let mut rng = SmallRng::seed_from_u64(input.seed ^ 0x5DEE_CE66_D1CE_5EED);

        // Region popularity: exponential weights raised to the
        // concentration power, then normalised — a cheap Dirichlet-like
        // skew that a different seed reshuffles completely.
        let weights: Vec<f64> = (0..self.regions.len())
            .map(|_| {
                let u: f64 = rng.gen_range(1e-6..1.0);
                (-u.ln()).powf(1.0 + input.concentration.max(0.0))
            })
            .collect();
        let total_w: f64 = weights.iter().sum();

        // Schedule enough visits to exceed the budget ~2×; the interpreter
        // stops exactly at the budget.
        let mean_visit_cost: f64 = self
            .per_visit
            .iter()
            .zip(&weights)
            .map(|(c, w)| c * (w / total_w))
            .sum();
        let visits = ((budget as f64 / mean_visit_cost) * 2.0).ceil() as usize + 4;

        let draw_weighted = |rng: &mut SmallRng| {
            let mut pick: f64 = rng.gen_range(0.0..total_w);
            let mut idx = 0;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= *w;
                idx = i;
            }
            idx
        };
        let mut schedule = Vec::with_capacity(visits);
        let mut current: Option<usize> = None;
        for _ in 0..visits {
            let idx = match (self.spec.schedule, current) {
                (ScheduleModel::Markov { self_loop }, Some(cur))
                    if rng.gen_bool(self_loop.clamp(0.0, 1.0)) =>
                {
                    cur
                }
                _ => draw_weighted(&mut rng),
            };
            current = Some(idx);
            schedule.push(self.regions[idx].func);
        }

        let program = self
            .builder
            .clone()
            .finish_with_schedule(&schedule, &mut rng);
        let config = InterpConfig {
            max_dynamic_branches: budget,
            seed: input
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1),
            ..InterpConfig::default()
        };
        let name = format!("{}:{}", self.spec.name, input.name);
        execute(&program, &name, &config).expect("instantiated programs are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "toy".into(),
            structure_seed: 11,
            regions: 4,
            branches_per_region: (3, 6),
            trips: (5, 15),
            bias: BiasMix {
                taken: 0.3,
                not_taken: 0.2,
            },
            pattern_frac: 0.3,
            correlated_frac: 0.1,
            guard_frac: 0.2,
            block_instrs: (1, 6),
            target_dynamic_branches: 20_000,
            schedule: ScheduleModel::default(),
        }
    }

    #[test]
    fn spec_validates() {
        assert!(small_spec().validate().is_ok());
    }

    #[test]
    fn invalid_specs_are_caught() {
        let mut s = small_spec();
        s.regions = 0;
        assert!(s.validate().is_err());
        let mut s = small_spec();
        s.branches_per_region = (5, 2);
        assert!(s.validate().is_err());
        let mut s = small_spec();
        s.bias = BiasMix {
            taken: 0.8,
            not_taken: 0.5,
        };
        assert!(s.validate().is_err());
        let mut s = small_spec();
        s.pattern_frac = 0.7;
        s.correlated_frac = 0.7;
        assert!(s.validate().is_err());
        let mut s = small_spec();
        s.target_dynamic_branches = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn trace_hits_the_budget() {
        let w = small_spec().instantiate().unwrap();
        let t = w.trace(&InputParams::new("a", 1));
        assert_eq!(t.len(), 20_000);
    }

    #[test]
    fn scaled_trace_is_smaller() {
        let w = small_spec().instantiate().unwrap();
        let t = w.trace_scaled(&InputParams::new("a", 1), 0.1);
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn structure_is_shared_across_inputs() {
        let w = small_spec().instantiate().unwrap();
        let a = w.trace_scaled(&InputParams::new("a", 1), 0.1);
        let b = w.trace_scaled(&InputParams::new("b", 999), 0.1);
        // Every pc in trace B exists in the static structure of A's program:
        let pcs: std::collections::HashSet<u64> = w.region_pcs().flatten().copied().collect();
        for rec in a.records().iter().chain(b.records()) {
            assert!(pcs.contains(&rec.pc.addr()));
        }
    }

    #[test]
    fn different_inputs_give_different_traces() {
        let w = small_spec().instantiate().unwrap();
        let a = w.trace_scaled(&InputParams::new("a", 1), 0.05);
        let b = w.trace_scaled(&InputParams::new("b", 2), 0.05);
        assert_ne!(a.records(), b.records());
    }

    #[test]
    fn same_input_is_deterministic() {
        let w = small_spec().instantiate().unwrap();
        let a = w.trace_scaled(&InputParams::new("a", 7), 0.05);
        let b = w.trace_scaled(&InputParams::new("a", 7), 0.05);
        assert_eq!(a, b);
    }

    #[test]
    fn concentration_skews_region_popularity() {
        let w = small_spec().instantiate().unwrap();
        let uniform = InputParams {
            name: "u".into(),
            seed: 3,
            concentration: 0.0,
        };
        let skewed = InputParams {
            name: "s".into(),
            seed: 3,
            concentration: 6.0,
        };
        let count_regions = |t: &bwsa_trace::Trace| {
            let mut firsts = std::collections::HashSet::new();
            for (i, pcs) in w.region_pcs().enumerate() {
                let set: std::collections::HashSet<u64> = pcs.iter().copied().collect();
                if t.records().iter().any(|r| set.contains(&r.pc.addr())) {
                    firsts.insert(i);
                }
            }
            firsts.len()
        };
        let tu = w.trace_scaled(&uniform, 0.25);
        let ts = w.trace_scaled(&skewed, 0.25);
        assert!(
            count_regions(&ts) <= count_regions(&tu),
            "high concentration should not broaden coverage"
        );
    }

    #[test]
    fn static_branch_count_matches_regions() {
        let w = small_spec().instantiate().unwrap();
        let from_regions: usize = w.region_pcs().map(<[u64]>::len).sum();
        assert_eq!(w.static_branch_count(), from_regions);
    }

    #[test]
    fn markov_schedule_increases_dwell_time() {
        // Count region switches in the trace by watching which region's
        // pcs appear; the Markov walk should switch much less often.
        let region_of = |w: &Workload, pc: u64| -> usize {
            w.region_pcs()
                .enumerate()
                .find(|(_, pcs)| pcs.contains(&pc))
                .map(|(i, _)| i)
                .expect("pc belongs to a region")
        };
        let switches = |spec: &WorkloadSpec| -> usize {
            let w = spec.instantiate().unwrap();
            let t = w.trace_scaled(&InputParams::new("m", 9), 0.5);
            let mut prev = None;
            let mut n = 0;
            for rec in t.records() {
                let r = region_of(&w, rec.pc.addr());
                if prev.is_some() && prev != Some(r) {
                    n += 1;
                }
                prev = Some(r);
            }
            n
        };
        let iid = small_spec();
        let mut markov = small_spec();
        markov.schedule = ScheduleModel::Markov { self_loop: 0.9 };
        assert!(
            switches(&markov) * 2 < switches(&iid),
            "markov {} vs iid {}",
            switches(&markov),
            switches(&iid)
        );
    }

    #[test]
    fn markov_self_loop_must_be_a_probability() {
        let mut s = small_spec();
        s.schedule = ScheduleModel::Markov { self_loop: 1.0 };
        assert!(s.validate().is_err());
        s.schedule = ScheduleModel::Markov { self_loop: 0.99 };
        assert!(s.validate().is_ok());
    }

    #[test]
    fn behaviors_cover_bias_classes() {
        // With enough draws, the structure should contain biased-taken,
        // biased-not-taken, and mixed branches.
        let mut s = small_spec();
        s.regions = 10;
        s.branches_per_region = (20, 20);
        let w = s.instantiate().unwrap();
        let t = w.trace(&InputParams::new("a", 5));
        let prof = bwsa_trace::profile::BranchProfile::from_trace(&t);
        let mut high = 0;
        let mut low = 0;
        let mut mid = 0;
        for (_, stats) in prof.iter() {
            if stats.executions < 100 {
                continue;
            }
            let r = stats.taken_rate();
            if r >= 0.99 {
                high += 1;
            } else if r <= 0.01 {
                low += 1;
            } else {
                mid += 1;
            }
        }
        assert!(
            high > 0 && low > 0 && mid > 0,
            "high={high} low={low} mid={mid}"
        );
    }
}
