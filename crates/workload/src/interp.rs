//! Deterministic program interpreter emitting branch traces.

use crate::behavior::{decide, BehaviorState, DecisionContext};
use crate::cfg::{BlockId, Program, Terminator};
use crate::WorkloadError;
use bwsa_trace::{Trace, TraceBuilder};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Execution limits and the dynamics seed.
///
/// The seed drives every stochastic branch decision; two runs with the
/// same program and config produce identical traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpConfig {
    /// Stop after this many dynamic conditional branches.
    pub max_dynamic_branches: u64,
    /// Stop once the instruction counter reaches this value (guards
    /// against branch-free infinite loops).
    pub max_instructions: u64,
    /// Abort if the call stack exceeds this depth.
    pub max_call_depth: usize,
    /// Seed for the dynamics RNG.
    pub seed: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_dynamic_branches: u64::MAX,
            max_instructions: 1 << 33, // ~8.6 G instructions: generous but finite
            max_call_depth: 1024,
            seed: 0,
        }
    }
}

impl InterpConfig {
    /// Convenience: default limits with a branch budget and seed.
    pub fn with_budget(max_dynamic_branches: u64, seed: u64) -> Self {
        InterpConfig {
            max_dynamic_branches,
            seed,
            ..InterpConfig::default()
        }
    }
}

/// Executes `program` from its main function, recording every conditional
/// branch into a trace named `name`.
///
/// Instruction accounting matches the paper's §4.1 timestamps: a branch
/// record's time is the number of instructions executed *before* that
/// dynamic branch; every terminator (branch, jump, call, return) itself
/// costs one instruction.
///
/// Execution ends when main returns/exits or a budget in `config` is
/// reached, whichever comes first.
///
/// # Errors
///
/// Returns [`WorkloadError`] if the program fails [`Program::validate`] or
/// the call stack exceeds `config.max_call_depth`.
///
/// # Example
///
/// ```
/// use bwsa_workload::behavior::BranchBehavior;
/// use bwsa_workload::cfg::{Program, Terminator};
/// use bwsa_workload::interp::{execute, InterpConfig};
///
/// # fn main() -> Result<(), bwsa_workload::WorkloadError> {
/// let mut p = Program::new();
/// let b = p.add_branch(0x400, BranchBehavior::LoopExit { trips: 3 });
/// let exit = p.add_block(0, Terminator::Exit);
/// let head = p.add_block(4, Terminator::Branch { decl: b, taken: exit, not_taken: exit });
/// p.set_terminator(head, Terminator::Branch { decl: b, taken: head, not_taken: exit });
/// let main = p.add_function("main", head);
/// p.set_main(main);
///
/// let trace = execute(&p, "loop3", &InterpConfig::default())?;
/// assert_eq!(trace.len(), 3); // taken, taken, not-taken
/// # Ok(())
/// # }
/// ```
pub fn execute(
    program: &Program,
    name: &str,
    config: &InterpConfig,
) -> Result<Trace, WorkloadError> {
    program.validate()?;
    // validate() currently guarantees a main, but a future relaxation of
    // it must not turn this into a panic on a fallible path.
    let main = program
        .main()
        .ok_or_else(|| WorkloadError::DanglingReference {
            holder: "program".into(),
            reference: "main function (none set)".into(),
        })?;

    let mut states: Vec<BehaviorState> = program
        .branches()
        .iter()
        .map(|d| d.behavior.initial_state())
        .collect();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut ctx = DecisionContext::default();
    let mut builder = TraceBuilder::new(name);

    let mut time: u64 = 0;
    let mut branches: u64 = 0;
    let mut stack: Vec<BlockId> = Vec::new();
    let mut current = program.function(main).entry;

    'run: loop {
        let block = program.block(current);
        time += u64::from(block.instr_count);
        if time >= config.max_instructions {
            break 'run;
        }
        match block.terminator {
            Terminator::Jump(next) => {
                time += 1;
                current = next;
            }
            Terminator::Branch {
                decl,
                taken,
                not_taken,
            } => {
                if branches >= config.max_dynamic_branches {
                    break 'run;
                }
                let d = program.branch(decl);
                let dir = decide(&d.behavior, &mut states[decl.0 as usize], &mut rng, &ctx);
                ctx.last_outcome = dir;
                builder.record(d.pc.addr(), dir.is_taken(), time);
                branches += 1;
                time += 1;
                current = if dir.is_taken() { taken } else { not_taken };
            }
            Terminator::Call { callee, then } => {
                if stack.len() >= config.max_call_depth {
                    return Err(WorkloadError::CallDepthExceeded {
                        limit: config.max_call_depth,
                    });
                }
                stack.push(then);
                time += 1;
                current = program.function(callee).entry;
            }
            Terminator::Return => {
                time += 1;
                match stack.pop() {
                    Some(cont) => current = cont,
                    None => break 'run, // main returned
                }
            }
            Terminator::Exit => {
                time += 1;
                break 'run;
            }
        }
    }
    builder.total_instructions(time);
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BranchBehavior;
    use crate::cfg::Terminator;

    /// Program: main calls f twice; f runs a 3-trip loop with one body branch.
    fn call_loop_program() -> Program {
        let mut p = Program::new();
        let loop_b = p.add_branch(0x400, BranchBehavior::LoopExit { trips: 3 });
        let body_b = p.add_branch(
            0x440,
            BranchBehavior::Pattern {
                bits: vec![true, false],
            },
        );

        let ret = p.add_block(0, Terminator::Return);
        // body diamond: branch to two joins that both go back to head.
        let head = p.add_block(2, Terminator::Return); // placeholder, rewired below
        let join = p.add_block(1, Terminator::Jump(head));
        let t_arm = p.add_block(3, Terminator::Jump(join));
        let n_arm = p.add_block(2, Terminator::Jump(join));
        let body = p.add_block(
            1,
            Terminator::Branch {
                decl: body_b,
                taken: t_arm,
                not_taken: n_arm,
            },
        );
        p.set_terminator(
            head,
            Terminator::Branch {
                decl: loop_b,
                taken: body,
                not_taken: ret,
            },
        );
        let f = p.add_function("f", head);

        let exit = p.add_block(0, Terminator::Exit);
        let second = p.add_block(
            0,
            Terminator::Call {
                callee: f,
                then: exit,
            },
        );
        let first = p.add_block(
            5,
            Terminator::Call {
                callee: f,
                then: second,
            },
        );
        let main = p.add_function("main", first);
        p.set_main(main);
        p
    }

    #[test]
    fn loop_executes_expected_branch_counts() {
        let p = call_loop_program();
        let t = execute(&p, "t", &InterpConfig::default()).unwrap();
        // Per call: loop branch 3x (T,T,N), body branch 2x. Two calls.
        assert_eq!(t.len(), 10);
        assert_eq!(t.static_branch_count(), 2);
        let loop_records: Vec<bool> = t
            .records()
            .iter()
            .filter(|r| r.pc.addr() == 0x400)
            .map(|r| r.is_taken())
            .collect();
        assert_eq!(loop_records, [true, true, false, true, true, false]);
    }

    #[test]
    fn pattern_state_persists_across_calls() {
        let p = call_loop_program();
        let t = execute(&p, "t", &InterpConfig::default()).unwrap();
        let body: Vec<bool> = t
            .records()
            .iter()
            .filter(|r| r.pc.addr() == 0x440)
            .map(|r| r.is_taken())
            .collect();
        assert_eq!(
            body,
            [true, false, true, false],
            "pattern continues across calls"
        );
    }

    #[test]
    fn timestamps_strictly_increase_and_count_instructions() {
        let p = call_loop_program();
        let t = execute(&p, "t", &InterpConfig::default()).unwrap();
        let mut prev = 0;
        for r in t.records() {
            assert!(
                r.time.get() > prev,
                "control instructions separate branches"
            );
            prev = r.time.get();
        }
        assert!(t.meta().total_instructions > prev);
        // First branch: main entry block (5 instrs) + call (1) + f head (2).
        assert_eq!(t.records()[0].time.get(), 8);
    }

    #[test]
    fn branch_budget_stops_execution() {
        let p = call_loop_program();
        let t = execute(&p, "t", &InterpConfig::with_budget(4, 0)).unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn instruction_budget_stops_branchless_loops() {
        let mut p = Program::new();
        let spin = p.add_block(10, Terminator::Exit);
        p.set_terminator(spin, Terminator::Jump(spin));
        let main = p.add_function("main", spin);
        p.set_main(main);
        let cfg = InterpConfig {
            max_instructions: 1000,
            ..InterpConfig::default()
        };
        let t = execute(&p, "spin", &cfg).unwrap();
        assert!(t.is_empty());
        assert!(t.meta().total_instructions >= 1000);
    }

    #[test]
    fn deep_recursion_is_rejected() {
        let mut p = Program::new();
        // f() { f(); } — infinite recursion.
        let placeholder = p.add_block(1, Terminator::Return);
        let f = p.add_function("f", placeholder);
        p.set_terminator(
            placeholder,
            Terminator::Call {
                callee: f,
                then: placeholder,
            },
        );
        p.set_main(f);
        let cfg = InterpConfig {
            max_call_depth: 8,
            ..InterpConfig::default()
        };
        assert_eq!(
            execute(&p, "rec", &cfg),
            Err(WorkloadError::CallDepthExceeded { limit: 8 })
        );
    }

    #[test]
    fn invalid_program_is_rejected_before_running() {
        let p = Program::new(); // no main
        assert!(execute(&p, "bad", &InterpConfig::default()).is_err());
    }

    #[test]
    fn execution_is_deterministic() {
        let p = call_loop_program();
        let a = execute(&p, "t", &InterpConfig::with_budget(1000, 42)).unwrap();
        let b = execute(&p, "t", &InterpConfig::with_budget(1000, 42)).unwrap();
        assert_eq!(a, b);
    }
}
