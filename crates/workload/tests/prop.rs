//! Property-based tests for the workload crate.

use bwsa_workload::behavior::BranchBehavior;
use bwsa_workload::builder::{PlannedBranch, ProgramBuilder, RegionPlan};
use bwsa_workload::interp::{execute, InterpConfig};
use bwsa_workload::spec::{BiasMix, InputParams, WorkloadSpec};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn arb_behavior() -> impl Strategy<Value = BranchBehavior> {
    prop_oneof![
        (0.0f64..=1.0).prop_map(|p| BranchBehavior::Bernoulli { taken_prob: p }),
        (1u32..50).prop_map(|t| BranchBehavior::LoopExit { trips: t }),
        prop::collection::vec(any::<bool>(), 1..8)
            .prop_map(|bits| BranchBehavior::Pattern { bits }),
        (0.0f64..=1.0).prop_map(|p| BranchBehavior::Correlated { agree_prob: p }),
    ]
}

fn arb_region() -> impl Strategy<Value = RegionPlan> {
    (
        1u32..20,
        prop::collection::vec((arb_behavior(), any::<bool>()), 1..8),
    )
        .prop_map(|(trips, branches)| RegionPlan {
            name: "r".into(),
            loop_trips: trips,
            branches: branches
                .into_iter()
                .map(|(behavior, guard)| PlannedBranch { behavior, guard })
                .collect(),
            block_instrs: (1, 6),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_programs_always_validate_and_run(
        regions in prop::collection::vec(arb_region(), 1..4),
        schedule_picks in prop::collection::vec(0usize..4, 0..12),
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = ProgramBuilder::new();
        let built: Vec<_> = regions.iter().map(|r| b.add_region(r, &mut rng)).collect();
        let schedule: Vec<_> = schedule_picks
            .iter()
            .map(|&i| built[i % built.len()].func)
            .collect();
        let program = b.finish_with_schedule(&schedule, &mut rng);
        prop_assert!(program.validate().is_ok());
        let cfg = InterpConfig { max_dynamic_branches: 50_000, ..InterpConfig::default() };
        let trace = execute(&program, "prop", &cfg).unwrap();
        // Timestamps are strictly increasing (every terminator costs one
        // instruction) and every pc is a declared branch.
        let mut prev = 0;
        let declared: std::collections::HashSet<u64> =
            program.branches().iter().map(|d| d.pc.addr()).collect();
        for rec in trace.records() {
            prop_assert!(rec.time.get() > prev);
            prev = rec.time.get();
            prop_assert!(declared.contains(&rec.pc.addr()));
        }
    }

    #[test]
    fn interpreter_is_deterministic(seed in any::<u64>(), budget in 1u64..5_000) {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut b = ProgramBuilder::new();
        let r = b.add_region(
            &RegionPlan {
                name: "r".into(),
                loop_trips: 5,
                branches: vec![PlannedBranch {
                    behavior: BranchBehavior::Bernoulli { taken_prob: 0.5 },
                    guard: false,
                }],
                block_instrs: (1, 4),
            },
            &mut rng,
        );
        let program = b.finish_with_schedule(&[r.func; 50], &mut rng);
        let cfg = InterpConfig { max_dynamic_branches: budget, seed, ..InterpConfig::default() };
        let a = execute(&program, "d", &cfg).unwrap();
        let b2 = execute(&program, "d", &cfg).unwrap();
        prop_assert_eq!(a.records(), b2.records());
        prop_assert!(a.len() as u64 <= budget);
    }

    #[test]
    fn spec_traces_respect_scaled_budgets(scale in 0.01f64..0.2, seed in any::<u64>()) {
        let spec = WorkloadSpec {
            name: "prop".into(),
            structure_seed: 5,
            regions: 3,
            branches_per_region: (2, 5),
            trips: (3, 10),
            bias: BiasMix { taken: 0.3, not_taken: 0.2 },
            pattern_frac: 0.3,
            correlated_frac: 0.1,
            guard_frac: 0.2,
            block_instrs: (1, 5),
            target_dynamic_branches: 30_000,
            schedule: bwsa_workload::spec::ScheduleModel::default(),
        };
        let w = spec.instantiate().unwrap();
        let t = w.trace_scaled(&InputParams::new("i", seed), scale);
        let expect = ((30_000.0 * scale).ceil() as u64).max(1);
        prop_assert_eq!(t.len() as u64, expect);
    }

    #[test]
    fn arbitrary_specs_never_panic(
        structure_seed in any::<u64>(),
        regions in 0usize..20,
        bpr_lo in 0usize..10, bpr_hi in 0usize..10,
        trips_lo in 0u32..20, trips_hi in 0u32..20,
        taken in -0.5f64..1.5, not_taken in -0.5f64..1.5,
        pattern_frac in -0.5f64..1.5,
        correlated_frac in -0.5f64..1.5,
        guard_frac in -0.5f64..1.5,
        block_lo in 0u32..8, block_hi in 0u32..8,
        target in 0u64..20_000,
        seed in any::<u64>(),
    ) {
        // Fuzz the spec surface: arbitrary (mostly nonsensical) knob
        // values must be rejected by `validate`/`instantiate` with a
        // typed `WorkloadError` — and the specs that *do* pass must
        // actually generate a trace. Nothing panics either way.
        let spec = WorkloadSpec {
            name: "fuzz".into(),
            structure_seed,
            regions,
            branches_per_region: (bpr_lo, bpr_hi),
            trips: (trips_lo, trips_hi),
            bias: BiasMix { taken, not_taken },
            pattern_frac,
            correlated_frac,
            guard_frac,
            block_instrs: (block_lo, block_hi),
            target_dynamic_branches: target,
            schedule: bwsa_workload::spec::ScheduleModel::default(),
        };
        let validated = spec.validate();
        // A typed rejection from `instantiate` is a correct outcome too.
        if let Ok(workload) = spec.instantiate() {
            prop_assert!(validated.is_ok(), "instantiate accepted what validate rejects");
            let trace = workload.trace_scaled(&InputParams::new("fuzz", seed), 0.01);
            prop_assert!(trace.len() as u64 <= target.max(1));
        }
    }

    #[test]
    fn behavior_decide_matches_expected_rate_for_loops(trips in 1u32..40) {
        use bwsa_workload::behavior::{decide, DecisionContext};
        let behavior = BranchBehavior::LoopExit { trips };
        let mut state = behavior.initial_state();
        let mut rng = SmallRng::seed_from_u64(1);
        let ctx = DecisionContext::default();
        let n = u64::from(trips) * 20;
        let taken = (0..n)
            .filter(|_| decide(&behavior, &mut state, &mut rng, &ctx).is_taken())
            .count() as f64;
        let rate = taken / n as f64;
        prop_assert!((rate - behavior.expected_taken_rate()).abs() < 1e-9);
    }
}
