//! **BWSA** — Branch Working Set Analysis.
//!
//! A from-scratch reproduction of Kim & Tyson, *Analyzing the Working Set
//! Characteristics of Branch Execution* (MICRO 1998): profile-based branch
//! working set analysis and compiler-directed branch allocation of
//! branch-history-table (BHT) entries, evaluated on a trace-driven
//! two-level branch predictor simulator.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`trace`] — dynamic branch traces, IO, per-branch profiles.
//! * [`workload`] — synthetic program generator/interpreter standing in
//!   for SimpleScalar + SPECint95, including the thirteen paper-benchmark
//!   profiles.
//! * [`graph`] — conflict graphs, clique extraction, merge-on-overflow
//!   graph coloring.
//! * [`predictor`] — the `sim-bpred` equivalent: bimodal, GAg, gshare,
//!   PAg, PAp, hybrid, agree, and allocation-indexed PAg variants.
//! * [`core`] — the paper's contribution: interleaving analysis, working
//!   sets, branch classification, and branch allocation, fronted by the
//!   [`core::Session`] API.
//! * [`obs`] — the observability layer: spans, counters, and versioned
//!   [`obs::RunReport`] documents.
//! * [`resilience`] — failpoints, the deterministic fault model, the
//!   cooperative watchdog, and the supervision primitives behind
//!   [`core::Session::with_supervisor`].
//! * [`corpus`] — fleet-scale batch analytics: trace manifests,
//!   parallel corpus ingestion, and order-invariant
//!   [`corpus::FleetSummary`] aggregation (`bwsa corpus`).
//! * [`server`] — the fault-isolated multi-tenant analysis daemon:
//!   BWSS2 over a length-prefixed socket protocol, per-tenant quotas,
//!   admission backpressure, and graceful drain (`bwsa serve`).
//!
//! # Quickstart
//!
//! ```
//! use bwsa::core::Session;
//! use bwsa::workload::suite::{Benchmark, InputSet};
//!
//! // Generate a small trace of the `compress`-like workload and analyse it.
//! let trace = Benchmark::Compress.generate_scaled(InputSet::A, 0.05);
//! let session = Session::new(&trace);
//! let analysis = session.run().unwrap();
//! println!("{} working sets", analysis.working_sets.report.total_sets);
//! ```

pub use bwsa_core as core;
pub use bwsa_corpus as corpus;
pub use bwsa_graph as graph;
pub use bwsa_obs as obs;
pub use bwsa_predictor as predictor;
pub use bwsa_resilience as resilience;
pub use bwsa_server as server;
pub use bwsa_trace as trace;
pub use bwsa_workload as workload;

/// One-import convenience: the types most programs touch.
///
/// ```
/// use bwsa::prelude::*;
///
/// let trace = Benchmark::Pgp.generate_scaled(InputSet::A, 0.01);
/// let session = Session::new(&trace);
/// let analysis = session.run().unwrap();
/// let mut pag = Pag::paper_baseline();
/// let result = simulate(&mut pag, &trace);
/// assert!(result.misprediction_rate() <= 1.0);
/// # let _ = analysis;
/// ```
pub mod prelude {
    pub use bwsa_core::allocation::allocate;
    pub use bwsa_core::conflict::ConflictAnalysis;
    pub use bwsa_core::prelude::*;
    pub use bwsa_core::{classify, BiasClass, WorkingSetDefinition};
    pub use bwsa_corpus::{Corpus, CorpusError, FleetSummary, Manifest};
    pub use bwsa_predictor::{simulate, BhtIndexer, BranchPredictor, Pag, SimResult};
    pub use bwsa_trace::{BranchId, BranchRecord, Direction, Pc, Trace, TraceBuilder};
    pub use bwsa_workload::suite::{Benchmark, InputSet};
}
