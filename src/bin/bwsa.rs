//! `bwsa` — command-line front end to the whole workspace.
//!
//! ```text
//! bwsa generate <benchmark> [--input a|b] [--scale F] [-o FILE]
//!     Generate a benchmark trace and write it in BWST1 binary format.
//!
//! bwsa analyze <trace> [--threshold N]
//!     Run branch working set analysis on a trace file and print the
//!     working-set report, classification counts, and trace statistics.
//!
//! bwsa allocate <trace> [--table N] [--threshold N] [--classify]
//!     Compute a branch allocation and report its conflict mass,
//!     occupancy, and the required-BHT-size search against the
//!     conventional 1024-entry baseline.
//!
//! bwsa simulate <trace> [--predictor NAME]
//!     Simulate a predictor over the trace (default: compare the PAg
//!     family). NAME ∈ pag | free | bimodal | gshare | gag | hybrid |
//!     agree | profile.
//!
//! bwsa dot <trace> [--threshold N]
//!     Emit the conflict graph as Graphviz DOT, colored by working set.
//! ```

use bwsa::core::allocation::AllocationConfig;
use bwsa::core::conflict::ConflictConfig;
use bwsa::core::pipeline::AnalysisPipeline;
use bwsa::graph::dot::{to_dot, DotOptions};
use bwsa::predictor::{
    simulate, Agree, BhtIndexer, BiMode, Bimodal, BranchPredictor, Gag, Gshare, Hybrid, Pag,
    StaticPredictor,
};
use bwsa::trace::{io as trace_io, stats::trace_stats, Trace};
use bwsa::workload::suite::{Benchmark, InputSet};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `bwsa help` for usage");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("allocate") => cmd_allocate(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("help") | None => {
            println!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

const USAGE: &str = "bwsa — branch working set analysis toolkit

subcommands:
  generate <benchmark> [--input a|b] [--scale F] [-o FILE]
  analyze  <trace> [--threshold N]
  allocate <trace> [--table N] [--threshold N] [--classify]
  simulate <trace> [--predictor pag|free|bimodal|gshare|gag|hybrid|agree|bimode|profile]
  dot      <trace> [--threshold N]
  help";

/// Pulls `--flag value` pairs and positionals out of an arg list.
struct Parsed {
    positionals: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

fn parse(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Parsed, String> {
    let mut p = Parsed {
        positionals: Vec::new(),
        flags: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
            if bool_flags.contains(&name) {
                p.flags.push((name.to_owned(), None));
            } else if value_flags.contains(&name) {
                let v = it.next().ok_or(format!("--{name} needs a value"))?;
                p.flags.push((name.to_owned(), Some(v.clone())));
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        } else {
            p.positionals.push(a.clone());
        }
    }
    Ok(p)
}

impl Parsed {
    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    trace_io::read_binary(BufReader::new(file)).map_err(|e| format!("cannot read {path}: {e}"))
}

fn threshold_of(p: &Parsed) -> Result<ConflictConfig, String> {
    match p.value("threshold") {
        None => Ok(ConflictConfig::default()),
        Some(v) => {
            let t: u64 = v.parse().map_err(|_| format!("bad threshold {v:?}"))?;
            ConflictConfig::with_threshold(t).map_err(|e| e.to_string())
        }
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["input", "scale", "o"], &[])?;
    let name = p
        .positionals
        .first()
        .ok_or("generate needs a benchmark name")?;
    let bench = Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name() == name)
        .ok_or(format!("unknown benchmark {name:?}"))?;
    let input = match p.value("input").unwrap_or("a") {
        "a" | "A" => InputSet::A,
        "b" | "B" => InputSet::B,
        other => return Err(format!("bad input set {other:?} (use a or b)")),
    };
    let scale: f64 = p
        .value("scale")
        .unwrap_or("1.0")
        .parse()
        .map_err(|_| "bad scale")?;
    if scale <= 0.0 {
        return Err("scale must be positive".into());
    }
    let out_path = p
        .value("o")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{}_{}.bwst", bench.name(), input.suffix()));
    let trace = bench.generate_scaled(input, scale);
    let file = File::create(&out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    trace_io::write_binary(&trace, &mut w).map_err(|e| e.to_string())?;
    w.flush().map_err(|e| e.to_string())?;
    println!("{trace}");
    println!("wrote {out_path}");
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["threshold"], &[])?;
    let path = p.positionals.first().ok_or("analyze needs a trace file")?;
    let trace = load_trace(path)?;
    let pipeline = AnalysisPipeline {
        conflict: threshold_of(&p)?,
        ..AnalysisPipeline::new()
    };
    let analysis = pipeline.run(&trace);

    println!("{trace}");
    let s = trace_stats(&trace);
    println!(
        "density {:.3} branches/instr, dynamic taken rate {:.1}%",
        s.branch_density,
        s.dynamic_taken_rate * 100.0
    );
    let r = &analysis.working_sets.report;
    println!(
        "\nconflict graph: {} edges kept of {} raw ({} threshold)",
        analysis.conflict.graph.edge_count(),
        analysis.conflict.raw_edge_count,
        pipeline.conflict.threshold
    );
    println!(
        "working sets: {} sets | avg static {:.1} | avg dynamic {:.1} | max {}",
        r.total_sets, r.avg_static_size, r.avg_dynamic_size, r.max_size
    );
    let (t, n, m) = analysis.classification.counts();
    println!("classification: {t} biased-taken, {n} biased-not-taken, {m} mixed");
    Ok(())
}

fn cmd_allocate(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["table", "threshold"], &["classify"])?;
    let path = p.positionals.first().ok_or("allocate needs a trace file")?;
    let table: usize = p
        .value("table")
        .unwrap_or("1024")
        .parse()
        .map_err(|_| "bad table size")?;
    let trace = load_trace(path)?;
    let pipeline = AnalysisPipeline {
        conflict: threshold_of(&p)?,
        ..AnalysisPipeline::new()
    };
    let analysis = pipeline.run(&trace);
    let cfg = AllocationConfig::default();
    let allocation = if p.has("classify") {
        analysis.allocate_classified(table, &cfg)
    } else {
        analysis.allocate(table, &cfg)
    };
    let occ = allocation.occupancy();
    println!(
        "allocation into {table} entries ({}): conflict mass {}, {} conflicting pairs",
        if p.has("classify") {
            "classified"
        } else {
            "plain"
        },
        allocation.conflict_mass,
        allocation.conflicting_pairs
    );
    println!(
        "occupancy: {} entries used, max {} branches/entry, mean {:.2}",
        occ.used_entries, occ.max_per_entry, occ.mean_per_used_entry
    );
    let required = if p.has("classify") {
        analysis.required_bht_size_classified(&trace, 1024, &cfg)
    } else {
        analysis.required_bht_size(&trace, 1024, &cfg)
    };
    println!(
        "required size to beat conventional 1024-entry BHT: {} (target mass {}, achieved {})",
        required.size, required.target_mass, required.achieved_mass
    );
    let mut pag = Pag::paper_with_indexer(BhtIndexer::Allocated(allocation.index));
    let alloc_rate = simulate(&mut pag, &trace).misprediction_rate();
    let conv = simulate(&mut Pag::paper_baseline(), &trace).misprediction_rate();
    let free = simulate(&mut Pag::interference_free(), &trace).misprediction_rate();
    println!(
        "\nmisprediction: allocated {:.2}% | conventional-1024 {:.2}% | interference-free {:.2}%",
        alloc_rate * 100.0,
        conv * 100.0,
        free * 100.0
    );
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["predictor"], &[])?;
    let path = p.positionals.first().ok_or("simulate needs a trace file")?;
    let trace = load_trace(path)?;
    let predictors: Vec<Box<dyn BranchPredictor>> = match p.value("predictor") {
        None => vec![
            Box::new(Pag::paper_baseline()),
            Box::new(Pag::interference_free()),
            Box::new(Bimodal::new(1024)),
            Box::new(Gshare::new(12)),
        ],
        Some(name) => vec![predictor_by_name(name, &trace)?],
    };
    for mut pred in predictors {
        println!("{}", simulate(&mut *pred, &trace));
    }
    Ok(())
}

fn predictor_by_name(name: &str, trace: &Trace) -> Result<Box<dyn BranchPredictor>, String> {
    Ok(match name {
        "pag" => Box::new(Pag::paper_baseline()),
        "free" => Box::new(Pag::interference_free()),
        "bimodal" => Box::new(Bimodal::new(1024)),
        "gshare" => Box::new(Gshare::new(12)),
        "gag" => Box::new(Gag::new(12)),
        "hybrid" => Box::new(Hybrid::new(Gshare::new(12), Bimodal::new(1024), 1024)),
        "agree" => Box::new(Agree::new(12, 1024)),
        "bimode" => Box::new(BiMode::new(12, 1024)),
        "profile" => Box::new(StaticPredictor::from_profile(trace)),
        other => return Err(format!("unknown predictor {other:?}")),
    })
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["threshold"], &[])?;
    let path = p.positionals.first().ok_or("dot needs a trace file")?;
    let trace = load_trace(path)?;
    let pipeline = AnalysisPipeline {
        conflict: threshold_of(&p)?,
        ..AnalysisPipeline::new()
    };
    let analysis = pipeline.run(&trace);
    let mut groups = vec![0u32; analysis.conflict.graph.node_count()];
    for (i, set) in analysis.working_sets.sets.iter().enumerate() {
        for &id in set {
            groups[id.index()] = i as u32;
        }
    }
    print!(
        "{}",
        to_dot(
            &analysis.conflict.graph,
            &DotOptions {
                groups: Some(groups),
                skip_isolated: true
            }
        )
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_splits_flags_and_positionals() {
        let p = parse(
            &strs(&["file.bwst", "--table", "128", "--classify"]),
            &["table"],
            &["classify"],
        )
        .unwrap();
        assert_eq!(p.positionals, vec!["file.bwst"]);
        assert_eq!(p.value("table"), Some("128"));
        assert!(p.has("classify"));
        assert!(!p.has("table2"));
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        assert!(parse(&strs(&["--nope"]), &[], &[]).is_err());
        assert!(parse(&strs(&["--table"]), &["table"], &[]).is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&strs(&["frobnicate"])).is_err());
    }

    #[test]
    fn help_succeeds() {
        assert!(run(&strs(&["help"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn predictor_names_resolve() {
        let trace = Trace::new("t");
        for name in [
            "pag", "free", "bimodal", "gshare", "gag", "hybrid", "agree", "bimode", "profile",
        ] {
            assert!(predictor_by_name(name, &trace).is_ok(), "{name}");
        }
        assert!(predictor_by_name("nope", &trace).is_err());
    }

    #[test]
    fn generate_analyze_allocate_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("bwsa_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.bwst");
        let out_s = out.to_str().unwrap().to_owned();
        run(&strs(&["generate", "pgp", "--scale", "0.01", "-o", &out_s])).unwrap();
        run(&strs(&["analyze", &out_s, "--threshold", "3"])).unwrap();
        run(&strs(&[
            "allocate",
            &out_s,
            "--table",
            "64",
            "--threshold",
            "3",
            "--classify",
        ]))
        .unwrap();
        run(&strs(&["simulate", &out_s, "--predictor", "pag"])).unwrap();
        std::fs::remove_file(out).unwrap();
    }
}
