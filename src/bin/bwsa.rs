//! `bwsa` — command-line front end to the whole workspace.
//!
//! ```text
//! bwsa generate <benchmark> [--input a|b] [--scale F] [--format bwst|bwss|bwss3] [-o FILE]
//!     Generate a benchmark trace and write it in BWST1 binary format,
//!     as a checksummed BWSS2 stream, or as a BWSS3 columnar file.
//!
//! bwsa convert <in> <out> [--format bwst|bwss|bwss3] [--salvage]
//!     Transcode a trace between formats (target taken from --format or
//!     the output extension). The round trip is record-identical.
//!
//! bwsa analyze <trace> [--threshold N] [--jobs N] [--salvage]
//!              [--checkpoint FILE [--checkpoint-every N]] [--resume FILE]
//!     Run branch working set analysis on a trace file and print the
//!     working-set report, classification counts, and trace statistics.
//!     In-memory traces are sharded across --jobs worker threads (default:
//!     all hardware threads) with output bit-identical to a serial run.
//!     BWSS streams are analysed without materialising the trace unless
//!     --jobs requests parallelism; --salvage recovers what it can from a
//!     corrupted stream, and --checkpoint/--resume make long runs
//!     restartable (checkpointed streaming is sequential, so it rejects
//!     --jobs above 1).
//!
//! bwsa allocate <trace> [--table N] [--threshold N] [--classify] [--salvage]
//!     Compute a branch allocation and report its conflict mass,
//!     occupancy, and the required-BHT-size search against the
//!     conventional 1024-entry baseline.
//!
//! bwsa simulate <trace> [--predictor NAME] [--jobs N] [--salvage]
//!               [--checkpoint FILE [--checkpoint-every N]] [--resume FILE]
//!     Simulate a predictor over the trace (default: compare the PAg
//!     family). NAME ∈ pag | free | bimodal | gshare | gag | hybrid |
//!     agree | bimode | profile; checkpointing supports the first four.
//!     The predictor grid fans out across --jobs worker threads with
//!     results always printed in grid order.
//!
//! bwsa dot <trace> [--threshold N] [--salvage]
//!     Emit the conflict graph as Graphviz DOT, colored by working set.
//!
//! bwsa corpus <manifest> [--jobs N] [--threshold N] [--report json|text]
//!             [--emit-fleet FILE]
//!     Run every trace named by a TOML/JSON corpus manifest through the
//!     supervised analysis pipeline — fanned across --jobs workers, each
//!     entry salvage-ingested and fault-isolated so one corrupt trace
//!     never sinks the batch — and fold the results into a versioned
//!     fleet summary, bit-identical for any job count or manifest order.
//!
//! bwsa validate-report <report.json>
//!     Check a previously emitted run report against this build's schema
//!     fixture and version.
//!
//! bwsa validate-fleet <fleet.json>
//!     Check a previously emitted fleet summary against this build's
//!     schema fixture and version.
//!
//! bwsa serve <socket> [--workers N] [--queue N] [--max-concurrent N]
//!            [--max-bytes-mb N] [--deadline-seconds S] [--retries N]
//!            [--max-rss-mb N] [--seed N]
//!     Run the fault-isolated multi-tenant analysis daemon on a
//!     Unix-domain socket until SIGTERM / ctrl-c / a shutdown request,
//!     then drain gracefully and exit 0. Bind failures exit 2.
//!
//! bwsa client <socket> <ping|analyze|allocate|corpus|report|status|shutdown>
//!             [<trace>|<manifest>] [--tenant NAME] [--threshold N] [--table N]
//!             [--classify] [--jobs N]
//!     One request against a running daemon; typed server-side errors
//!     exit 1 with the server's message (and retry-after hint on
//!     overload).
//! ```
//!
//! `analyze`, `allocate`, and `simulate` additionally accept
//! `--report json|text` (emit a versioned run report with per-stage wall
//! times, counters, and result digests; `json` replaces the normal
//! human output) and `--metrics FILE` (write the JSON report to a file
//! alongside the normal output).
//!
//! `analyze` and `allocate` accept `--retries N`, `--max-seconds S`, and
//! `--max-rss-mb N` to run under supervision (worker isolation, retry
//! with backoff, cooperative deadlines, graceful degradation — see
//! `bwsa::core::supervise`). `BWSA_FAILPOINTS` arms deterministic fault
//! injection for chaos testing.
//!
//! Exit codes: 0 on success (including a partial salvage, which warns on
//! stderr, and a degraded-but-finished supervised run), 1 on I/O, data,
//! and resilience errors — every fault exits typed, never as a raw
//! panic — 2 on usage errors.

use bwsa::core::conflict::ConflictConfig;
use bwsa::core::pipeline::{Analysis, AnalysisPipeline};
use bwsa::core::{
    Classified, Execution, ParallelConfig, Session, StreamingAnalysis, SupervisorConfig,
    WindowConfig,
};
use bwsa::corpus::{Corpus, EntryStatus, FleetSummary, FLEET_SUMMARY_VERSION};
use bwsa::graph::dot::{to_dot, DotOptions};
use bwsa::obs::json::Json;
use bwsa::obs::report::schema_shape;
use bwsa::obs::{Obs, RunReport, RUN_REPORT_VERSION};
use bwsa::predictor::{
    simulate_observed, simulate_resumable, sweep_observed, Agree, BhtIndexer, BiMode, Bimodal,
    BranchPredictor, Checkpointable, Gag, Gshare, Hybrid, Pag, PredictorError, SimCheckpoint,
    StaticPredictor, SweepCell,
};
use bwsa::resilience::{failpoint, supervisor, watchdog, DetRng};
use bwsa::server::server::ServerConfig;
use bwsa::server::{signal, AdmissionConfig, Client, Response, Server, TenantQuotas};
use bwsa::trace::codec::crc32;
use bwsa::trace::columnar::{self, ColumnarFile};
use bwsa::trace::mmap::TraceBytes;
use bwsa::trace::stream::{
    RecoveryPolicy, SalvageReport, StreamReader, StreamWriter, DEFAULT_CHUNK_RECORDS,
};
use bwsa::trace::{io as trace_io, stats::trace_stats, Trace};
use bwsa::workload::suite::{Benchmark, InputSet};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// A CLI failure, classified for the exit code: misuse of the command
/// line exits 2, failures of the data or the environment exit 1.
#[derive(Debug, PartialEq, Eq)]
enum CliError {
    /// The invocation itself was wrong (unknown flag, missing argument).
    Usage(String),
    /// The invocation was fine but the work failed (I/O, corrupt data).
    Runtime(String),
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn runtime_err(msg: impl Into<String>) -> CliError {
    CliError::Runtime(msg.into())
}

fn main() -> ExitCode {
    // Chaos harness hook: `BWSA_FAILPOINTS=site=action;...` arms the
    // failpoint registry for this process. A malformed spec is an
    // invocation error, caught before any work starts.
    if let Err(e) = failpoint::configure_from_env() {
        eprintln!("error: invalid BWSA_FAILPOINTS: {e}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Last-resort containment: an unwind that escapes a subcommand — an
    // injected fault on an unsupervised path, a blown deadline, a
    // genuine bug — still exits with the documented code 1 and a typed
    // message, never a raw panic.
    match supervisor::catch(|| run(&args)) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(CliError::Usage(msg))) => {
            eprintln!("error: {msg}");
            eprintln!("run `bwsa help` for usage");
            ExitCode::from(2)
        }
        Ok(Err(CliError::Runtime(msg))) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
        Err(fault) => {
            eprintln!("error: {fault}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("allocate") => cmd_allocate(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("validate-report") => cmd_validate_report(&args[1..]),
        Some("validate-fleet") => cmd_validate_fleet(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("help") | None => {
            println!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(usage_err(format!("unknown subcommand {other:?}"))),
    }
}

const USAGE: &str = "bwsa — branch working set analysis toolkit

subcommands:
  generate <benchmark> [--input a|b] [--scale F] [--format bwst|bwss|bwss3] [-o FILE]
  convert  <in> <out> [--format bwst|bwss|bwss3] [--salvage]
  analyze  <trace> [--threshold N] [--jobs N] [--salvage]
           [--window N[i] [--emit-windows FILE]]
           [--checkpoint FILE [--checkpoint-every N]] [--resume FILE]
           [--retries N] [--max-seconds S] [--max-rss-mb N]
           [--report json|text] [--metrics FILE]
  allocate <trace> [--table N] [--threshold N] [--classify] [--salvage]
           [--retries N] [--max-seconds S] [--max-rss-mb N]
           [--report json|text] [--metrics FILE]
  simulate <trace> [--predictor pag|free|bimodal|gshare|gag|hybrid|agree|bimode|profile]
           [--jobs N] [--salvage] [--checkpoint FILE [--checkpoint-every N]] [--resume FILE]
           [--report json|text] [--metrics FILE]
  dot      <trace> [--threshold N] [--salvage]
  corpus   <manifest> [--jobs N] [--threshold N] [--report json|text]
           [--emit-fleet FILE] [--cache-dir DIR | --no-cache] [--resume]
  validate-report <report.json>
  validate-fleet  <fleet.json>
  serve    <socket> [--workers N] [--queue N] [--max-concurrent N]
           [--max-bytes-mb N] [--deadline-seconds S] [--retries N]
           [--max-rss-mb N] [--seed N] [--corpus-cache DIR]
  client   <socket> <ping|analyze|subscribe|allocate|corpus|report|status|shutdown>
           [<trace>|<manifest>] [--tenant NAME] [--threshold N] [--table N]
           [--classify] [--window N[i]] [--jobs N] [--retries N]
  help

trace files may be BWST (in-memory binary), BWSS (checksummed stream),
or BWS3 (columnar blocks, the fast ingest path); the format is detected
from the file's magic. --salvage recovers what it can from a corrupted
BWSS stream or BWSS3 block (partial results exit 0 with a warning on
stderr). --checkpoint writes a resumable BWCK checkpoint every N stream
chunks (default 64, one chunk = 4096 records); --resume continues from
one (BWSS streams only — BWSS3 ingest is fast enough to restart).

`convert` transcodes a trace between the three formats: the target is
--format, or else the output extension (.bwst/.bwss/.bws3). The record
sequence is preserved exactly, so every analysis, simulation, and corpus
result over the converted file is byte-identical to the original. BWSS3
files memory-map on ingest and decode column blocks straight into the
analysis engines — the recommended format for large cold corpora.

--jobs N runs analysis shards or simulation grid cells on N worker
threads (default: all hardware threads); results are bit-identical to a
serial run. Checkpointed streaming analysis is inherently sequential, so
`analyze --checkpoint/--resume` rejects --jobs above 1.

--window N analyzes the trace in online windows of N dynamic branches
(Ni: N instructions), printing per-window working sets, conflict-graph
deltas, phase-change signals, and incremental BHT re-coloring stability;
the windows provably fold into the exact whole-trace answer. --emit-windows
writes the per-window summaries as JSON. Windowed runs materialise the
trace, so they reject --checkpoint/--resume.

--retries/--max-seconds/--max-rss-mb run the analysis under supervision:
failed workers are isolated and retried N times with backoff, a run over
the wall-clock deadline is cancelled cooperatively, and a run over the
memory budget drops to the low-memory engine. A supervised run degrades
gracefully (parallel -> serial -> streaming, recorded in the run report)
and its result is bit-identical to an unsupervised run whenever any
engine succeeds. Checkpoints rotate the previous good file to FILE.prev,
and --resume falls back to it when FILE is corrupt.

--report json prints a versioned run report (stage wall times, counters,
result digests, supervision outcome) as the only stdout output;
--report text appends a human-readable report to the normal output.
--metrics FILE writes the JSON report to FILE without changing stdout.
`validate-report` checks an emitted report against this build's schema
and version.

`corpus` runs the whole batch named by a TOML or JSON manifest: every
trace is ingested under salvage and analyzed in a supervised session,
fanned across --jobs worker threads, and the per-entry results fold into
a versioned fleet summary (working-set distributions, allocation win per
workload class, degradation rates) that is bit-identical for any job
count or manifest order. One corrupt trace never sinks the batch — the
entry is marked degraded or failed and the rest complete. --report json
prints the summary document instead of the table; --emit-fleet FILE
writes it to a file; `validate-fleet` checks an emitted summary against
this build's schema fixture. A malformed manifest (duplicate trace
paths, dangling entries, unknown keys) exits 2; a completed batch exits
0 even when entries degraded.

corpus runs are incremental by default: every finished entry is stored
in a content-addressed result cache (`.bwsa-cache/` beside the manifest,
or --cache-dir DIR), keyed by the trace's content digest and the entry's
effective analysis configuration, so an unchanged entry is replayed from
disk instead of re-analyzed — the folded summary is byte-identical
either way. Cache cells are checksummed and verified on read; a torn or
damaged cell is treated as a miss and recomputed, never an error. A
journal of completed entries is fsynced as the batch runs; after a crash
(even kill -9), `--resume` replays the completed entries from the cache
and analyzes only the remainder, producing the same summary bytes as an
uninterrupted run. The journal rotates to journal.prev on each fresh
run, and --resume falls back to it when the newest journal is torn.
--no-cache disables all of this (and conflicts with --cache-dir and
--resume). Cache hit/miss/eviction/corrupt counts print to stderr.

`serve` runs the long-lived multi-tenant analysis daemon on a Unix-domain
socket: every request is supervised and fault-isolated (a poisoned trace
answers with a typed error frame, never a crashed daemon), per-tenant
quotas bound concurrency (--max-concurrent) and in-flight bytes
(--max-bytes-mb), and past the admission queue's shed watermark
(--queue) requests are rejected with a deterministic jittered
retry-after hint instead of queueing without bound. SIGTERM / ctrl-c /
a `client shutdown` request drains gracefully: in-flight requests
finish, the socket file is removed, and the daemon exits 0. A bind
failure — like any malformed flag — exits 2.

`client` speaks the daemon's BWSF frame protocol: ping, analyze, and
allocate print the server's JSON response; subscribe streams a trace for
windowed analysis (--window N[i]) and prints each window summary as the
server emits it, then the whole-trace result — bit-identical to analyze
on the same trace; corpus asks the daemon to batch-analyze a manifest on
the *server's* filesystem (the path travels, not the traces) and prints
the fleet summary; report prints the versioned
RunReport of that request's own supervised run (it validates with
`validate-report`); status prints live metrics with per-tenant counters;
shutdown asks for a drain. A typed server-side
error prints to stderr and exits 1 (an overload rejection includes the
server's retry-after hint). --retries N retries a shed request up to N
times, sleeping at least the server's retry-after hint (plus
deterministic jittered backoff) between attempts, so a briefly
overloaded daemon is ridden out instead of failed. BWST trace files are
re-encoded to BWSS2 on the fly before upload; BWSS2 and BWSS3 files
travel as-is. `serve --corpus-cache DIR`
gives the daemon a server-local result cache for corpus requests:
already-cached entries are replayed without charging the tenant's
in-flight byte quota for re-analysis.

env: BWSA_FAILPOINTS=site=action;... arms deterministic fault injection
for chaos testing (actions: panic, error(msg), delay(ms), off; prefix
COUNT* to limit firings).

exit codes: 0 success (including partial salvage and any supervised run
that degraded but finished), 1 I/O, data, or resilience error (every
fault is reported typed — no raw panics), 2 usage error";

/// Pulls `--flag value` pairs and positionals out of an arg list.
struct Parsed {
    positionals: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

fn parse(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Parsed, CliError> {
    let mut p = Parsed {
        positionals: Vec::new(),
        flags: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
            if bool_flags.contains(&name) {
                p.flags.push((name.to_owned(), None));
            } else if value_flags.contains(&name) {
                let v = it
                    .next()
                    .ok_or_else(|| usage_err(format!("--{name} needs a value")))?;
                p.flags.push((name.to_owned(), Some(v.clone())));
            } else {
                return Err(usage_err(format!("unknown flag --{name}")));
            }
        } else {
            p.positionals.push(a.clone());
        }
    }
    Ok(p)
}

impl Parsed {
    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

/// On-disk trace encodings, detected by magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    /// `BWST`: whole-trace binary (bwsa_trace::io).
    Bwst,
    /// `BWSS`: chunked, checksummed stream (bwsa_trace::stream).
    Bwss,
    /// `BWS3`: columnar block format (bwsa_trace::columnar).
    Bwss3,
}

fn detect_format(path: &str) -> Result<TraceFormat, CliError> {
    let mut f = File::open(path).map_err(|e| runtime_err(format!("cannot open {path}: {e}")))?;
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic)
        .map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?;
    match &magic {
        b"BWST" => Ok(TraceFormat::Bwst),
        b"BWSS" => Ok(TraceFormat::Bwss),
        b"BWS3" => Ok(TraceFormat::Bwss3),
        _ => Err(runtime_err(format!(
            "{path}: unrecognised trace format (expected BWST, BWSS, or BWS3 magic)"
        ))),
    }
}

fn recovery_policy(p: &Parsed) -> RecoveryPolicy {
    if p.has("salvage") {
        RecoveryPolicy::Salvage
    } else {
        RecoveryPolicy::Strict
    }
}

/// How `--report` wants the run report rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReportMode {
    Json,
    Text,
}

/// The observability request parsed off a subcommand's flags: an optional
/// `--report` rendering plus an optional `--metrics` sidecar file.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ReportSpec {
    mode: Option<ReportMode>,
    metrics_path: Option<String>,
}

impl ReportSpec {
    /// Whether any instrumentation output was requested at all.
    fn wanted(&self) -> bool {
        self.mode.is_some() || self.metrics_path.is_some()
    }

    /// `--report json` owns stdout: the normal human output is suppressed
    /// so the report is the only thing printed.
    fn json_only(&self) -> bool {
        self.mode == Some(ReportMode::Json)
    }

    /// A recording observer when a report was requested, the zero-cost
    /// no-op otherwise.
    fn observer(&self) -> Obs {
        if self.wanted() {
            Obs::recording()
        } else {
            Obs::noop()
        }
    }

    /// Emits the finished report: `--metrics` file first, then stdout in
    /// the requested rendering.
    fn emit(&self, report: &RunReport) -> Result<(), CliError> {
        if let Some(path) = &self.metrics_path {
            std::fs::write(path, report.to_json_string())
                .map_err(|e| runtime_err(format!("cannot write {path}: {e}")))?;
        }
        match self.mode {
            Some(ReportMode::Json) => println!("{}", report.to_json_string()),
            Some(ReportMode::Text) => print!("\n{}", report.to_text()),
            None => {}
        }
        Ok(())
    }
}

fn report_spec(p: &Parsed) -> Result<ReportSpec, CliError> {
    let mode = match p.value("report") {
        None => None,
        Some("json") => Some(ReportMode::Json),
        Some("text") => Some(ReportMode::Text),
        Some(other) => {
            return Err(usage_err(format!(
                "bad --report {other:?} (use json or text)"
            )))
        }
    };
    Ok(ReportSpec {
        mode,
        metrics_path: p.value("metrics").map(str::to_owned),
    })
}

/// A `crc32:xxxxxxxx` digest over a stable rendering of a result, for
/// cheap cross-run equality checks inside run reports.
fn digest_of(stable: &str) -> String {
    format!("crc32:{:08x}", crc32(stable.as_bytes()))
}

/// Appends the analysis result digests every `analyze` report carries.
fn push_analysis_digests(report: &mut RunReport, analysis: &Analysis) {
    let r = &analysis.working_sets.report;
    report.push_digest(
        "working_sets",
        digest_of(&format!(
            "{} {} {:.6} {:.6}",
            r.total_sets, r.max_size, r.avg_static_size, r.avg_dynamic_size
        )),
    );
    let (t, n, m) = analysis.classification.counts();
    report.push_digest("classification", digest_of(&format!("{t} {n} {m}")));
    report.push_digest(
        "conflict_graph",
        digest_of(&format!(
            "{} {}",
            analysis.conflict.graph.edge_count(),
            analysis.conflict.raw_edge_count
        )),
    );
}

/// Prints the stderr warning for a partial salvage. A clean read stays
/// silent.
fn warn_salvage(path: &str, report: &SalvageReport) {
    if report.chunks_dropped == 0 && report.first_error.is_none() {
        return;
    }
    eprintln!(
        "warning: {path} was damaged: {} chunks ok, {} dropped, {} records recovered",
        report.chunks_ok, report.chunks_dropped, report.records_recovered
    );
    if let Some(e) = &report.first_error {
        eprintln!("warning: first error: {e}");
    }
}

/// Loads a trace of either format into memory under an `ingest` span. For
/// BWSS input the salvage report is returned so callers can warn about
/// recovered damage, and the stream reader feeds `trace.*` counters into
/// `obs`.
fn load_trace(
    path: &str,
    policy: RecoveryPolicy,
    obs: &Obs,
) -> Result<(Trace, SalvageReport), CliError> {
    let span = obs.span("ingest");
    let loaded = match detect_format(path)? {
        TraceFormat::Bwst => {
            let file =
                File::open(path).map_err(|e| runtime_err(format!("cannot open {path}: {e}")))?;
            let trace = trace_io::read_binary(BufReader::new(file))
                .map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?;
            obs.add("trace.records_read", trace.len() as u64);
            Ok((trace, SalvageReport::default()))
        }
        TraceFormat::Bwss => {
            let file =
                File::open(path).map_err(|e| runtime_err(format!("cannot open {path}: {e}")))?;
            let mut reader = StreamReader::with_recovery(BufReader::new(file), policy)
                .map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?
                .with_observer(obs.clone());
            let mut trace = Trace::new(reader.name().to_owned());
            for item in reader.by_ref() {
                let rec = item.map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?;
                trace
                    .push(rec)
                    .map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?;
            }
            if let Some(total) = reader.total_instructions() {
                trace.meta_mut().total_instructions = total;
            }
            Ok((trace, reader.salvage_report().clone()))
        }
        TraceFormat::Bwss3 => {
            // Memory-map the file and decode column blocks in parallel
            // off the footer's block index (bit-identical to serial).
            let bytes = TraceBytes::open(path.as_ref())
                .map_err(|e| runtime_err(format!("cannot open {path}: {e}")))?;
            let jobs = ParallelConfig::available().jobs.get();
            let (trace, report) = bwsa::core::columnar::decode_columnar(&bytes, policy, jobs)
                .map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?;
            obs.add("trace.records_read", trace.len() as u64);
            Ok((trace, report))
        }
    };
    span.finish();
    loaded
}

fn threshold_of(p: &Parsed) -> Result<ConflictConfig, CliError> {
    match p.value("threshold") {
        None => Ok(ConflictConfig::default()),
        Some(v) => {
            let t: u64 = v
                .parse()
                .map_err(|_| usage_err(format!("bad threshold {v:?}")))?;
            ConflictConfig::with_threshold(t).map_err(|e| usage_err(e.to_string()))
        }
    }
}

/// Worker count from `--jobs`: `None` when the flag is absent (callers
/// pick a subcommand-appropriate default), `Some(n ≥ 1)` otherwise.
fn jobs_of(p: &Parsed) -> Result<Option<usize>, CliError> {
    match p.value("jobs") {
        None => Ok(None),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| usage_err(format!("bad --jobs {v:?}")))?;
            if n == 0 {
                return Err(usage_err("--jobs must be positive"));
            }
            Ok(Some(n))
        }
    }
}

/// Resolves an optional `--jobs` value to a parallel-analysis
/// configuration, defaulting to one worker per hardware thread.
fn parallel_config(jobs: Option<usize>) -> ParallelConfig {
    match jobs {
        Some(n) => ParallelConfig::with_jobs(n),
        None => ParallelConfig::available(),
    }
}

/// Supervision request from `--retries`, `--max-seconds`, and
/// `--max-rss-mb`; `None` when none of the flags are present (plain,
/// unsupervised execution).
fn supervisor_of(p: &Parsed) -> Result<Option<SupervisorConfig>, CliError> {
    let mut config = SupervisorConfig::default();
    let mut any = false;
    if let Some(v) = p.value("retries") {
        config.retries = v
            .parse()
            .map_err(|_| usage_err(format!("bad --retries {v:?}")))?;
        any = true;
    }
    if let Some(v) = p.value("max-seconds") {
        let secs: f64 = v
            .parse()
            .map_err(|_| usage_err(format!("bad --max-seconds {v:?}")))?;
        if !secs.is_finite() || secs <= 0.0 {
            return Err(usage_err("--max-seconds must be positive"));
        }
        config.max_wall = Some(Duration::from_secs_f64(secs));
        any = true;
    }
    if let Some(v) = p.value("max-rss-mb") {
        let mb: u64 = v
            .parse()
            .map_err(|_| usage_err(format!("bad --max-rss-mb {v:?}")))?;
        if mb == 0 {
            return Err(usage_err("--max-rss-mb must be positive"));
        }
        config.max_rss_bytes = Some(mb * 1024 * 1024);
        any = true;
    }
    Ok(any.then_some(config))
}

/// Checkpoint cadence in records, derived from `--checkpoint-every` (in
/// stream chunks; default 64). `None` when `--checkpoint` was not given.
fn checkpoint_cadence(p: &Parsed) -> Result<Option<(String, u64)>, CliError> {
    let every: u64 = match p.value("checkpoint-every") {
        None => 64,
        Some(v) => {
            let n = v
                .parse()
                .map_err(|_| usage_err(format!("bad --checkpoint-every {v:?}")))?;
            if n == 0 {
                return Err(usage_err("--checkpoint-every must be positive"));
            }
            n
        }
    };
    match p.value("checkpoint") {
        Some(path) => Ok(Some((
            path.to_owned(),
            every * DEFAULT_CHUNK_RECORDS as u64,
        ))),
        None if p.value("checkpoint-every").is_some() => {
            Err(usage_err("--checkpoint-every needs --checkpoint FILE"))
        }
        None => Ok(None),
    }
}

/// Writes checkpoint bytes via a temporary file and rename, so a crash
/// mid-write never leaves a torn checkpoint at the final path. The
/// checkpoint being replaced is rotated to `FILE.prev` first, so even if
/// the final file is later torn or corrupted on disk, one good ancestor
/// survives for `--resume` to fall back to.
fn write_checkpoint(path: &str, bytes: &[u8]) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, bytes).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    if std::fs::metadata(path).is_ok() {
        let prev = format!("{path}.prev");
        std::fs::rename(path, &prev).map_err(|e| format!("cannot rotate {path} to {prev}: {e}"))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} to {path}: {e}"))
}

/// Loads a `--resume` checkpoint, falling back to the rotated
/// `FILE.prev` ancestor (with a stderr warning) when the primary file is
/// missing or corrupt. Errors only when no readable checkpoint remains.
fn load_checkpoint_with_fallback<T>(
    path: &str,
    parse: impl Fn(&[u8]) -> Result<T, String>,
) -> Result<T, CliError> {
    let primary = std::fs::read(path)
        .map_err(|e| format!("cannot read {path}: {e}"))
        .and_then(|bytes| parse(&bytes));
    let err = match primary {
        Ok(v) => return Ok(v),
        Err(e) => e,
    };
    let prev = format!("{path}.prev");
    match std::fs::read(&prev) {
        Ok(bytes) => match parse(&bytes) {
            Ok(v) => {
                eprintln!("warning: {err}; resuming from previous good checkpoint {prev}");
                Ok(v)
            }
            Err(prev_err) => Err(runtime_err(format!("{err}; fallback {prev}: {prev_err}"))),
        },
        Err(_) => Err(runtime_err(err)),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let p = parse(args, &["input", "scale", "o", "format"], &[])?;
    let name = p
        .positionals
        .first()
        .ok_or_else(|| usage_err("generate needs a benchmark name"))?;
    let bench = Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name() == name)
        .ok_or_else(|| usage_err(format!("unknown benchmark {name:?}")))?;
    let input = match p.value("input").unwrap_or("a") {
        "a" | "A" => InputSet::A,
        "b" | "B" => InputSet::B,
        other => return Err(usage_err(format!("bad input set {other:?} (use a or b)"))),
    };
    let scale: f64 = p
        .value("scale")
        .unwrap_or("1.0")
        .parse()
        .map_err(|_| usage_err("bad scale"))?;
    if scale <= 0.0 {
        return Err(usage_err("scale must be positive"));
    }
    let format = match p.value("format").unwrap_or("bwst") {
        "bwst" => TraceFormat::Bwst,
        "bwss" => TraceFormat::Bwss,
        "bwss3" => TraceFormat::Bwss3,
        other => {
            return Err(usage_err(format!(
                "bad format {other:?} (use bwst, bwss, or bwss3)"
            )))
        }
    };
    let ext = match format {
        TraceFormat::Bwst => "bwst",
        TraceFormat::Bwss => "bwss",
        TraceFormat::Bwss3 => "bws3",
    };
    let out_path = p
        .value("o")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{}_{}.{ext}", bench.name(), input.suffix()));
    let trace = bench.generate_scaled(input, scale);
    let file = File::create(&out_path)
        .map_err(|e| runtime_err(format!("cannot create {out_path}: {e}")))?;
    let mut w = BufWriter::new(file);
    match format {
        TraceFormat::Bwst => {
            trace_io::write_binary(&trace, &mut w).map_err(|e| runtime_err(e.to_string()))?;
        }
        TraceFormat::Bwss => {
            let mut sw = StreamWriter::new(&mut w, &trace.meta().name)
                .map_err(|e| runtime_err(e.to_string()))?;
            for r in trace.records() {
                sw.push(*r).map_err(|e| runtime_err(e.to_string()))?;
            }
            sw.finish(trace.meta().total_instructions)
                .map_err(|e| runtime_err(e.to_string()))?;
        }
        TraceFormat::Bwss3 => {
            columnar::write_columnar(&trace, &mut w).map_err(|e| runtime_err(e.to_string()))?;
        }
    }
    w.flush().map_err(|e| runtime_err(e.to_string()))?;
    println!("{trace}");
    println!("wrote {out_path}");
    Ok(())
}

/// `bwsa convert <in> <out>` — transcode a trace between the BWST, BWSS,
/// and BWSS3 formats, preserving the record sequence exactly. The target
/// format comes from `--format`, or else the output file's extension.
fn cmd_convert(args: &[String]) -> Result<(), CliError> {
    let p = parse(args, &["format"], &["salvage"])?;
    let [in_path, out_path] = p.positionals.as_slice() else {
        return Err(usage_err("convert needs an input and an output file"));
    };
    let target = match p.value("format") {
        Some("bwst") => TraceFormat::Bwst,
        Some("bwss") => TraceFormat::Bwss,
        Some("bwss3") => TraceFormat::Bwss3,
        Some(other) => {
            return Err(usage_err(format!(
                "bad format {other:?} (use bwst, bwss, or bwss3)"
            )))
        }
        None => match std::path::Path::new(out_path)
            .extension()
            .and_then(|e| e.to_str())
        {
            Some("bwst") => TraceFormat::Bwst,
            Some("bwss") => TraceFormat::Bwss,
            Some("bws3") => TraceFormat::Bwss3,
            _ => {
                return Err(usage_err(format!(
                    "cannot infer the target format from {out_path:?}; \
                     use --format bwst|bwss|bwss3 or a .bwst/.bwss/.bws3 extension"
                )))
            }
        },
    };
    let (trace, report) = load_trace(in_path, recovery_policy(&p), &Obs::noop())?;
    warn_salvage(in_path, &report);
    let file = File::create(out_path)
        .map_err(|e| runtime_err(format!("cannot create {out_path}: {e}")))?;
    let mut w = BufWriter::new(file);
    match target {
        TraceFormat::Bwst => {
            trace_io::write_binary(&trace, &mut w).map_err(|e| runtime_err(e.to_string()))?;
        }
        TraceFormat::Bwss => {
            let mut sw = StreamWriter::new(&mut w, &trace.meta().name)
                .map_err(|e| runtime_err(e.to_string()))?;
            for r in trace.records() {
                sw.push(*r).map_err(|e| runtime_err(e.to_string()))?;
            }
            sw.finish(trace.meta().total_instructions)
                .map_err(|e| runtime_err(e.to_string()))?;
        }
        TraceFormat::Bwss3 => {
            columnar::write_columnar(&trace, &mut w).map_err(|e| runtime_err(e.to_string()))?;
        }
    }
    w.flush().map_err(|e| runtime_err(e.to_string()))?;
    println!(
        "converted {in_path} -> {out_path} ({} records, {} static branches)",
        trace.len(),
        trace.static_branch_count()
    );
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), CliError> {
    let p = parse(
        args,
        &[
            "threshold",
            "checkpoint",
            "checkpoint-every",
            "resume",
            "jobs",
            "retries",
            "max-seconds",
            "max-rss-mb",
            "report",
            "metrics",
            "window",
            "emit-windows",
        ],
        &["salvage"],
    )?;
    let path = p
        .positionals
        .first()
        .ok_or_else(|| usage_err("analyze needs a trace file"))?;
    let pipeline = AnalysisPipeline {
        conflict: threshold_of(&p)?,
        ..AnalysisPipeline::new()
    };
    checkpoint_cadence(&p)?;
    let spec = report_spec(&p)?;
    let obs = spec.observer();
    let jobs = jobs_of(&p)?;
    let supervisor = supervisor_of(&p)?;
    let windowing = window_spec(&p)?;
    let wants_checkpointing = p.value("checkpoint").is_some() || p.value("resume").is_some();
    if wants_checkpointing && jobs.is_some_and(|j| j > 1) {
        return Err(usage_err(
            "--checkpoint/--resume stream sequentially and cannot use --jobs above 1",
        ));
    }
    if wants_checkpointing && windowing.is_some() {
        return Err(usage_err(
            "--window runs the trace in memory and cannot combine with --checkpoint/--resume",
        ));
    }
    match detect_format(path)? {
        TraceFormat::Bwst => {
            if wants_checkpointing {
                return Err(usage_err(
                    "--checkpoint/--resume need a BWSS stream trace (see `bwsa generate --format bwss`)",
                ));
            }
            let (trace, _) = load_trace(path, RecoveryPolicy::Strict, &obs)?;
            analyze_in_memory(&trace, &pipeline, jobs, supervisor, &windowing, &spec, &obs)?;
        }
        // A BWSS stream stays on the constant-memory sequential path
        // unless --jobs explicitly asks for workers or --window asks for
        // per-window summaries, both of which materialise the trace.
        TraceFormat::Bwss
            if !wants_checkpointing && (jobs.is_some_and(|j| j > 1) || windowing.is_some()) =>
        {
            let (trace, report) = load_trace(path, recovery_policy(&p), &obs)?;
            warn_salvage(path, &report);
            analyze_in_memory(&trace, &pipeline, jobs, supervisor, &windowing, &spec, &obs)?;
        }
        TraceFormat::Bwss => {
            // Streaming is already the bottom of the degradation ladder;
            // supervision here means only the cooperative deadline (each
            // record decode is a cancellation point).
            let _watchdog = supervisor
                .and_then(|c| c.max_wall)
                .map(|wall| watchdog::arm(Instant::now() + wall));
            analyze_stream(path, &p, &pipeline, &spec, &obs)?
        }
        TraceFormat::Bwss3 if wants_checkpointing => {
            return Err(usage_err(
                "--checkpoint/--resume need a BWSS stream trace; BWSS3 ingest \
                 is fast enough to restart (see `bwsa convert`)",
            ));
        }
        // Windowed or explicitly parallel runs materialise the trace via
        // the block-parallel decoder; otherwise blocks stream straight
        // into the flat engines with no per-record materialisation.
        TraceFormat::Bwss3 if jobs.is_some_and(|j| j > 1) || windowing.is_some() => {
            let (trace, report) = load_trace(path, recovery_policy(&p), &obs)?;
            warn_salvage(path, &report);
            analyze_in_memory(&trace, &pipeline, jobs, supervisor, &windowing, &spec, &obs)?;
        }
        TraceFormat::Bwss3 => {
            let _watchdog = supervisor
                .and_then(|c| c.max_wall)
                .map(|wall| watchdog::arm(Instant::now() + wall));
            analyze_columnar(path, &p, &pipeline, &spec, &obs)?
        }
    }
    Ok(())
}

/// Streaming analysis of a BWSS3 columnar trace: blocks decode into a
/// reusable scratch and feed the streaming engine record-by-record, so
/// memory stays constant in the trace length and the file bytes come
/// straight off the memory map.
fn analyze_columnar(
    path: &str,
    p: &Parsed,
    pipeline: &AnalysisPipeline,
    spec: &ReportSpec,
    obs: &Obs,
) -> Result<(), CliError> {
    let bytes = TraceBytes::open(path.as_ref())
        .map_err(|e| runtime_err(format!("cannot open {path}: {e}")))?;
    let file =
        ColumnarFile::parse(&bytes).map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?;
    let trace_name = file.name().to_owned();
    let instructions = file.footer().map(|f| f.total_instructions);
    let (result, report) =
        bwsa::core::columnar::analyze_columnar_stream(pipeline, &bytes, recovery_policy(p), obs)
            .map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?;
    warn_salvage(path, &report);
    let n = report.records_recovered;
    let static_count = result.profile.iter().count();
    if !spec.json_only() {
        println!(
            "trace '{}': {} dynamic branches over {} static sites, {} instructions",
            trace_name,
            n,
            static_count,
            instructions.map_or_else(|| "unknown".to_owned(), |t| t.to_string())
        );
        let taken: u64 = result.profile.iter().map(|(_, s)| s.taken).sum();
        let density = match instructions {
            Some(t) if t > 0 => n as f64 / t as f64,
            _ => 0.0,
        };
        let taken_rate = if n > 0 { taken as f64 / n as f64 } else { 0.0 };
        println!(
            "density {:.3} branches/instr, dynamic taken rate {:.1}%",
            density,
            taken_rate * 100.0
        );
        print_analysis(&result, pipeline);
    }
    if let Some(metrics) = obs.snapshot() {
        let mut report = RunReport::new(
            "analyze",
            trace_name,
            n,
            static_count as u64,
            stream_config_json(pipeline),
            &metrics,
        );
        push_analysis_digests(&mut report, &result);
        spec.emit(&report)?;
    }
    Ok(())
}

/// `--window N[i]` / `--emit-windows FILE` for `analyze`: the parsed
/// window configuration plus the optional per-window JSON output path.
/// Both are validated before any trace I/O happens.
fn window_spec(p: &Parsed) -> Result<Option<(WindowConfig, Option<String>)>, CliError> {
    let emit = p.value("emit-windows").map(str::to_owned);
    match p.value("window") {
        Some(spec) => {
            let config = WindowConfig::parse(spec)
                .map_err(|e| usage_err(format!("bad --window value: {e}")))?;
            Ok(Some((config, emit)))
        }
        None if emit.is_some() => Err(usage_err("--emit-windows needs --window N[i]")),
        None => Ok(None),
    }
}

/// The in-memory `analyze` path: a [`Session`] over the sharded parallel
/// pipeline (bit-identical to serial for any worker count) plus the
/// report printout.
fn analyze_in_memory(
    trace: &Trace,
    pipeline: &AnalysisPipeline,
    jobs: Option<usize>,
    supervisor: Option<SupervisorConfig>,
    windowing: &Option<(WindowConfig, Option<String>)>,
    spec: &ReportSpec,
    obs: &Obs,
) -> Result<(), CliError> {
    let mut session = Session::new(trace)
        .with_pipeline(*pipeline)
        .with_execution(Execution::Parallel(parallel_config(jobs)))
        .with_observer(obs.clone());
    if let Some(config) = supervisor {
        session = session.with_supervisor(config);
    }
    if let Some((config, _)) = windowing {
        session = session.with_windowing(*config);
    }
    let analysis = session.run().map_err(|e| runtime_err(e.to_string()))?;
    if !spec.json_only() {
        println!("{trace}");
        let s = trace_stats(trace);
        println!(
            "density {:.3} branches/instr, dynamic taken rate {:.1}%",
            s.branch_density,
            s.dynamic_taken_rate * 100.0
        );
        print_analysis(analysis, pipeline);
    }
    if let Some((config, emit)) = windowing {
        // Computed before run_report so the report's v3 `windows`
        // section reflects this run.
        let windowed = session.windowed().map_err(|e| runtime_err(e.to_string()))?;
        if !spec.json_only() {
            println!(
                "windows: {} x {} {} | {} recolors | mean stability {:.3} | {} phase changes",
                windowed.windows.len(),
                config.interval(),
                config.unit().label(),
                windowed.recolors,
                windowed.mean_stability,
                windowed.phase_changes
            );
        }
        if let Some(path) = emit {
            std::fs::write(path, windowed.to_json().to_pretty_string())
                .map_err(|e| runtime_err(format!("cannot write {path}: {e}")))?;
        }
    }
    if let Some(mut report) = session.run_report("analyze") {
        push_analysis_digests(&mut report, analysis);
        spec.emit(&report)?;
    }
    Ok(())
}

/// The configuration echo for the streaming `analyze` path, which has no
/// [`Session`] to build one (the trace is never materialised).
fn stream_config_json(pipeline: &AnalysisPipeline) -> Json {
    Json::object([
        (
            "conflict_threshold",
            Json::UInt(pipeline.conflict.threshold),
        ),
        (
            "working_set_definition",
            Json::from(format!("{:?}", pipeline.definition)),
        ),
        ("taken_threshold", Json::Float(pipeline.taken_threshold)),
        (
            "not_taken_threshold",
            Json::Float(pipeline.not_taken_threshold),
        ),
        ("execution", Json::from("streaming")),
        ("jobs", Json::UInt(1)),
        ("shards", Json::Null),
    ])
}

/// Streaming analysis of a BWSS trace: constant memory in the trace
/// length, with optional salvage and checkpoint/resume.
fn analyze_stream(
    path: &str,
    p: &Parsed,
    pipeline: &AnalysisPipeline,
    spec: &ReportSpec,
    obs: &Obs,
) -> Result<(), CliError> {
    let file = File::open(path).map_err(|e| runtime_err(format!("cannot open {path}: {e}")))?;
    let mut reader = StreamReader::with_recovery(BufReader::new(file), recovery_policy(p))
        .map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?
        .with_observer(obs.clone());
    let mut analysis = match p.value("resume") {
        Some(ck_path) => {
            let a = load_checkpoint_with_fallback(ck_path, |bytes| {
                StreamingAnalysis::load_observed(bytes, obs).map_err(|e| format!("{ck_path}: {e}"))
            })?;
            if a.trace_name() != reader.name() {
                return Err(runtime_err(format!(
                    "{ck_path} is a checkpoint of trace {:?}, not {:?}",
                    a.trace_name(),
                    reader.name()
                )));
            }
            a
        }
        None => StreamingAnalysis::new(reader.name()),
    };
    let cadence = checkpoint_cadence(p)?;
    let to_skip = analysis.records_consumed();
    let mut skipped = 0u64;
    let mut next_checkpoint_at = cadence
        .as_ref()
        .map(|(_, every)| analysis.records_consumed() + every);
    let ingest_span = obs.span("ingest");
    for item in reader.by_ref() {
        let rec = item.map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?;
        if skipped < to_skip {
            skipped += 1;
            continue;
        }
        analysis.push(&rec);
        if let (Some((ck_path, every)), Some(at)) = (&cadence, next_checkpoint_at) {
            if analysis.records_consumed() >= at {
                write_checkpoint(ck_path, &analysis.save_observed(obs)).map_err(runtime_err)?;
                next_checkpoint_at = Some(analysis.records_consumed() + every);
            }
        }
    }
    ingest_span.finish();
    if skipped < to_skip {
        return Err(runtime_err(format!(
            "checkpoint consumed {to_skip} records but {path} only has {skipped}"
        )));
    }
    warn_salvage(path, reader.salvage_report());

    let n = analysis.records_consumed();
    let static_count = analysis.static_branch_count();
    let instructions = reader.total_instructions();
    if !spec.json_only() {
        println!(
            "trace '{}': {} dynamic branches over {} static sites, {} instructions",
            reader.name(),
            n,
            static_count,
            instructions.map_or_else(|| "unknown".to_owned(), |t| t.to_string())
        );
    }
    let trace_name = reader.name().to_owned();
    let result = analysis.finish_observed(pipeline, obs);
    if !spec.json_only() {
        let taken: u64 = result.profile.iter().map(|(_, s)| s.taken).sum();
        let density = match instructions {
            Some(t) if t > 0 => n as f64 / t as f64,
            _ => 0.0,
        };
        let taken_rate = if n > 0 { taken as f64 / n as f64 } else { 0.0 };
        println!(
            "density {:.3} branches/instr, dynamic taken rate {:.1}%",
            density,
            taken_rate * 100.0
        );
        print_analysis(&result, pipeline);
    }
    if let Some(metrics) = obs.snapshot() {
        let mut report = RunReport::new(
            "analyze",
            trace_name,
            n,
            static_count as u64,
            stream_config_json(pipeline),
            &metrics,
        );
        push_analysis_digests(&mut report, &result);
        spec.emit(&report)?;
    }
    Ok(())
}

/// The common tail of `analyze` output, shared by the in-memory and
/// streaming paths.
fn print_analysis(analysis: &bwsa::core::Analysis, pipeline: &AnalysisPipeline) {
    let r = &analysis.working_sets.report;
    println!(
        "\nconflict graph: {} edges kept of {} raw ({} threshold)",
        analysis.conflict.graph.edge_count(),
        analysis.conflict.raw_edge_count,
        pipeline.conflict.threshold
    );
    println!(
        "working sets: {} sets | avg static {:.1} | avg dynamic {:.1} | max {}",
        r.total_sets, r.avg_static_size, r.avg_dynamic_size, r.max_size
    );
    let (t, n, m) = analysis.classification.counts();
    println!("classification: {t} biased-taken, {n} biased-not-taken, {m} mixed");
}

fn cmd_allocate(args: &[String]) -> Result<(), CliError> {
    let p = parse(
        args,
        &[
            "table",
            "threshold",
            "retries",
            "max-seconds",
            "max-rss-mb",
            "report",
            "metrics",
        ],
        &["classify", "salvage"],
    )?;
    let path = p
        .positionals
        .first()
        .ok_or_else(|| usage_err("allocate needs a trace file"))?;
    let table: usize = p
        .value("table")
        .unwrap_or("1024")
        .parse()
        .map_err(|_| usage_err("bad table size"))?;
    let supervisor = supervisor_of(&p)?;
    let spec = report_spec(&p)?;
    let obs = spec.observer();
    let (trace, report) = load_trace(path, recovery_policy(&p), &obs)?;
    warn_salvage(path, &report);
    let pipeline = AnalysisPipeline {
        conflict: threshold_of(&p)?,
        ..AnalysisPipeline::new()
    };
    let classified = Classified(p.has("classify"));
    let mut session = Session::new(&trace)
        .with_pipeline(pipeline)
        .with_observer(obs.clone());
    if let Some(config) = supervisor {
        session = session.with_supervisor(config);
    }
    let allocation = session
        .allocate(classified, table)
        .map_err(|e| runtime_err(e.to_string()))?;
    let occ = allocation.occupancy();
    if !spec.json_only() {
        println!(
            "allocation into {table} entries ({}): conflict mass {}, {} conflicting pairs",
            if classified.0 { "classified" } else { "plain" },
            allocation.conflict_mass,
            allocation.conflicting_pairs
        );
        println!(
            "occupancy: {} entries used, max {} branches/entry, mean {:.2}",
            occ.used_entries, occ.max_per_entry, occ.mean_per_used_entry
        );
    }
    let required = session
        .required_bht_size(classified, 1024)
        .map_err(|e| runtime_err(e.to_string()))?;
    if !spec.json_only() {
        println!(
            "required size to beat conventional 1024-entry BHT: {} (target mass {}, achieved {})",
            required.size, required.target_mass, required.achieved_mass
        );
    }
    let alloc_mass = allocation.conflict_mass;
    let alloc_pairs = allocation.conflicting_pairs;
    let mut pag = Pag::paper_with_indexer(BhtIndexer::Allocated(allocation.index));
    let alloc_rate = simulate_observed(&mut pag, &trace, &obs).misprediction_rate();
    let conv = simulate_observed(&mut Pag::paper_baseline(), &trace, &obs).misprediction_rate();
    let free = simulate_observed(&mut Pag::interference_free(), &trace, &obs).misprediction_rate();
    if !spec.json_only() {
        println!(
            "\nmisprediction: allocated {:.2}% | conventional-1024 {:.2}% | interference-free {:.2}%",
            alloc_rate * 100.0,
            conv * 100.0,
            free * 100.0
        );
    }
    if let Some(mut run_report) = session.run_report("allocate") {
        push_analysis_digests(
            &mut run_report,
            session.run().map_err(|e| runtime_err(e.to_string()))?,
        );
        run_report.push_digest(
            "allocation",
            digest_of(&format!("{table} {alloc_mass} {alloc_pairs}")),
        );
        run_report.push_digest(
            "required_size",
            digest_of(&format!(
                "{} {} {}",
                required.size, required.target_mass, required.achieved_mass
            )),
        );
        spec.emit(&run_report)?;
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let p = parse(
        args,
        &[
            "predictor",
            "checkpoint",
            "checkpoint-every",
            "resume",
            "jobs",
            "report",
            "metrics",
        ],
        &["salvage"],
    )?;
    let path = p
        .positionals
        .first()
        .ok_or_else(|| usage_err("simulate needs a trace file"))?;
    let cadence = checkpoint_cadence(&p)?;
    let jobs = jobs_of(&p)?.unwrap_or_else(|| ParallelConfig::available().jobs.get());
    let spec = report_spec(&p)?;
    let obs = spec.observer();
    let wants_checkpointing = cadence.is_some() || p.value("resume").is_some();
    let (trace, report) = load_trace(path, recovery_policy(&p), &obs)?;
    warn_salvage(path, &report);

    let cells: Vec<SweepCell<'_>> = if !wants_checkpointing {
        let predictors: Vec<Box<dyn BranchPredictor + Send>> = match p.value("predictor") {
            None => vec![
                Box::new(Pag::paper_baseline()),
                Box::new(Pag::interference_free()),
                Box::new(Bimodal::new(1024)),
                Box::new(Gshare::new(12)),
            ],
            Some(name) => vec![predictor_by_name(name, &trace)?],
        };
        predictors
            .into_iter()
            .map(|mut pred| {
                let trace = &trace;
                SweepCell::new(pred.name(), move || {
                    Ok(bwsa::predictor::simulate(&mut *pred, trace))
                })
            })
            .collect()
    } else {
        let name = p.value("predictor").ok_or_else(|| {
            usage_err("--checkpoint/--resume need --predictor (pag|free|bimodal|gshare)")
        })?;
        let mut pred = checkpointable_by_name(name)?;
        let resume = match p.value("resume") {
            Some(ck_path) => Some(load_checkpoint_with_fallback(ck_path, |bytes| {
                SimCheckpoint::from_bytes(bytes).map_err(|e| format!("{ck_path}: {e}"))
            })?),
            None => None,
        };
        let every = cadence.as_ref().map(|(_, every)| *every);
        let trace = &trace;
        let cadence = cadence.clone();
        vec![SweepCell::new(pred.name(), move || {
            simulate_resumable(
                pred.as_mut(),
                trace,
                resume.as_ref(),
                every,
                |ck| match &cadence {
                    Some((ck_path, _)) => write_checkpoint(ck_path, &ck.to_bytes())
                        .map_err(|reason| PredictorError::Checkpoint { reason }),
                    None => Ok(()),
                },
            )
        })]
    };
    let results = sweep_observed(cells, jobs, &obs).map_err(|e| runtime_err(e.to_string()))?;
    if !spec.json_only() {
        for result in &results {
            println!("{result}");
        }
    }
    obs.sample_peak_rss();
    if let Some(metrics) = obs.snapshot() {
        let config = Json::object([
            (
                "predictor",
                Json::from(p.value("predictor").unwrap_or("grid")),
            ),
            ("jobs", Json::UInt(jobs as u64)),
            ("checkpointing", Json::from(wants_checkpointing)),
        ]);
        let mut run_report = RunReport::new(
            "simulate",
            trace.meta().name.clone(),
            trace.len() as u64,
            trace.static_branch_count() as u64,
            config,
            &metrics,
        );
        for result in &results {
            run_report.push_digest(
                result.predictor.as_str(),
                digest_of(&format!("{} {}", result.mispredictions, result.total)),
            );
        }
        spec.emit(&run_report)?;
    }
    Ok(())
}

fn predictor_by_name(
    name: &str,
    trace: &Trace,
) -> Result<Box<dyn BranchPredictor + Send>, CliError> {
    Ok(match name {
        "pag" => Box::new(Pag::paper_baseline()),
        "free" => Box::new(Pag::interference_free()),
        "bimodal" => Box::new(Bimodal::new(1024)),
        "gshare" => Box::new(Gshare::new(12)),
        "gag" => Box::new(Gag::new(12)),
        "hybrid" => Box::new(Hybrid::new(Gshare::new(12), Bimodal::new(1024), 1024)),
        "agree" => Box::new(Agree::new(12, 1024)),
        "bimode" => Box::new(BiMode::new(12, 1024)),
        "profile" => Box::new(StaticPredictor::from_profile(trace)),
        other => return Err(usage_err(format!("unknown predictor {other:?}"))),
    })
}

/// The checkpoint-capable subset of [`predictor_by_name`].
fn checkpointable_by_name(name: &str) -> Result<Box<dyn Checkpointable + Send>, CliError> {
    Ok(match name {
        "pag" => Box::new(Pag::paper_baseline()),
        "free" => Box::new(Pag::interference_free()),
        "bimodal" => Box::new(Bimodal::new(1024)),
        "gshare" => Box::new(Gshare::new(12)),
        other => {
            return Err(usage_err(format!(
                "predictor {other:?} does not support checkpointing (use pag|free|bimodal|gshare)"
            )))
        }
    })
}

fn cmd_dot(args: &[String]) -> Result<(), CliError> {
    let p = parse(args, &["threshold"], &["salvage"])?;
    let path = p
        .positionals
        .first()
        .ok_or_else(|| usage_err("dot needs a trace file"))?;
    let (trace, report) = load_trace(path, recovery_policy(&p), &Obs::noop())?;
    warn_salvage(path, &report);
    let pipeline = AnalysisPipeline {
        conflict: threshold_of(&p)?,
        ..AnalysisPipeline::new()
    };
    let session = Session::new(&trace).with_pipeline(pipeline);
    let analysis = session.run().map_err(|e| runtime_err(e.to_string()))?;
    let mut groups = vec![0u32; analysis.conflict.graph.node_count()];
    for (i, set) in analysis.working_sets.sets.iter().enumerate() {
        for &id in set {
            groups[id.index()] = i as u32;
        }
    }
    print!(
        "{}",
        to_dot(
            &analysis.conflict.graph,
            &DotOptions {
                groups: Some(groups),
                skip_isolated: true
            }
        )
    );
    Ok(())
}

/// The pinned run-report schema this build emits and validates against —
/// the same fixture the golden schema test locks (`tests/golden/`).
const RUN_REPORT_SCHEMA: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/run_report.schema"
));

fn cmd_validate_report(args: &[String]) -> Result<(), CliError> {
    let p = parse(args, &[], &[])?;
    let path = p
        .positionals
        .first()
        .ok_or_else(|| usage_err("validate-report needs a report JSON file"))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?;
    let doc = Json::parse(&text).map_err(|e| runtime_err(format!("{path}: {e}")))?;
    let version = doc
        .get("run_report_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| runtime_err(format!("{path}: missing run_report_version")))?;
    // v2 reports predate the `windows` section and remain valid: the
    // subset shape check below never requires the missing paths.
    if version != RUN_REPORT_VERSION && version != 2 {
        return Err(runtime_err(format!(
            "{path}: run_report_version {version}, this build validates versions 2 and {RUN_REPORT_VERSION}"
        )));
    }
    // Subset check: every path in the report must be in the pinned
    // schema. Commands emit different counter/digest/config sets, so the
    // wildcarded shape is the contract, not byte equality.
    let known: std::collections::BTreeSet<&str> = RUN_REPORT_SCHEMA.lines().collect();
    let shape = schema_shape(&doc);
    let unknown: Vec<&str> = shape
        .lines()
        .filter(|line| !line.is_empty() && !known.contains(line))
        .collect();
    if !unknown.is_empty() {
        return Err(runtime_err(format!(
            "{path}: shape differs from the version-{RUN_REPORT_VERSION} schema; unknown fields:\n  {}",
            unknown.join("\n  ")
        )));
    }
    println!("{path}: valid run report (version {version})");
    Ok(())
}

/// The pinned fleet-summary schema this build emits and validates
/// against — the same fixture the golden schema test locks
/// (`tests/golden/`).
const FLEET_SUMMARY_SCHEMA: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/fleet_summary.schema"
));

/// `bwsa corpus <manifest>` — batch-analyze every trace a manifest names
/// and fold the results into a fleet summary. Manifest problems
/// (unparseable, duplicate paths, dangling entries) are invocation
/// errors (exit 2); a completed batch exits 0 even when individual
/// entries degraded or failed, because per-entry containment is the
/// subcommand's contract.
fn cmd_corpus(args: &[String]) -> Result<(), CliError> {
    let p = parse(
        args,
        &[
            "jobs",
            "threshold",
            "report",
            "emit-fleet",
            "retries",
            "max-seconds",
            "max-rss-mb",
            "cache-dir",
        ],
        &["no-cache", "resume"],
    )?;
    let manifest = p
        .positionals
        .first()
        .ok_or_else(|| usage_err("corpus needs a manifest file"))?;
    if p.positionals.len() > 1 {
        return Err(usage_err(format!(
            "unexpected argument {:?}",
            p.positionals[1]
        )));
    }
    let no_cache = p.has("no-cache");
    let resume = p.has("resume");
    if no_cache && p.value("cache-dir").is_some() {
        return Err(usage_err("--no-cache conflicts with --cache-dir"));
    }
    if no_cache && resume {
        return Err(usage_err(
            "--no-cache conflicts with --resume (resume replays the result cache)",
        ));
    }
    let report_mode = match p.value("report") {
        None => None,
        Some("json") => Some(ReportMode::Json),
        Some("text") => Some(ReportMode::Text),
        Some(other) => {
            return Err(usage_err(format!(
                "bad --report {other:?} (use json or text)"
            )))
        }
    };
    // Validate every flag before touching the filesystem: misuse exits
    // 2 even when the manifest does not exist.
    let jobs = jobs_of(&p)?;
    let threshold = match p.value("threshold") {
        None => None,
        Some(v) => {
            let t: u64 = v
                .parse()
                .map_err(|_| usage_err(format!("bad threshold {v:?}")))?;
            ConflictConfig::with_threshold(t).map_err(|e| usage_err(e.to_string()))?;
            Some(t)
        }
    };
    let supervisor = supervisor_of(&p)?;
    let corpus = Corpus::open(manifest.as_ref()).map_err(|e| {
        if e.is_usage() {
            usage_err(e.to_string())
        } else {
            runtime_err(e.to_string())
        }
    })?;
    let mut session = corpus.session();
    if let Some(jobs) = jobs {
        session = session.with_jobs(jobs);
    }
    if let Some(t) = threshold {
        session = session.with_threshold(t);
    }
    if let Some(config) = supervisor {
        session = session.with_supervisor(config);
    }
    if no_cache {
        // Every entry runs fresh; nothing is read or written on disk.
    } else {
        // The cache lives beside the manifest by default, so repeated
        // runs over the same corpus share it without any flag.
        let cache_dir = match p.value("cache-dir") {
            Some(dir) => std::path::PathBuf::from(dir),
            None => std::path::Path::new(manifest)
                .parent()
                .unwrap_or_else(|| std::path::Path::new("."))
                .join(".bwsa-cache"),
        };
        if resume {
            let (entries, source) = bwsa::corpus::journal::load(&cache_dir);
            match source {
                bwsa::corpus::journal::JournalSource::Absent => {
                    eprintln!(
                        "warning: no run journal in {}; starting fresh",
                        cache_dir.display()
                    );
                }
                bwsa::corpus::journal::JournalSource::Ancestor => {
                    eprintln!(
                        "warning: newest journal unreadable; resuming from \
                         previous good journal ({} completed entries)",
                        entries.len()
                    );
                }
                bwsa::corpus::journal::JournalSource::Primary => {
                    eprintln!(
                        "resuming: {} entries already complete in journal",
                        entries.len()
                    );
                }
            }
            session = session.with_resume(true);
        }
        session = session.with_cache(cache_dir);
    }
    let summary = session.run_all();
    if !no_cache {
        let c = summary.cache;
        eprintln!(
            "cache: {} hits, {} misses, {} evicted, {} corrupt",
            c.hits, c.misses, c.evictions, c.corrupt
        );
    }
    if let Some(path) = p.value("emit-fleet") {
        std::fs::write(path, summary.to_json().to_pretty_string())
            .map_err(|e| runtime_err(format!("cannot write {path}: {e}")))?;
    }
    match report_mode {
        Some(ReportMode::Json) => println!("{}", summary.to_json().to_pretty_string()),
        Some(ReportMode::Text) | None => print_fleet_text(&summary),
    }
    Ok(())
}

/// Renders a fleet summary as the human-readable corpus table.
fn print_fleet_text(summary: &FleetSummary) {
    println!(
        "corpus {}: {} entries, {} records",
        summary.name,
        summary.entries.len(),
        summary.records
    );
    println!(
        "{:<28} {:<9} {:>10} {:>6} {:>6} {:>9} {:>8}",
        "entry", "status", "records", "sets", "max", "required", "win"
    );
    for e in &summary.entries {
        if e.status == EntryStatus::Failed {
            println!(
                "{:<28} {:<9} {}",
                e.key,
                e.status.label(),
                e.error.as_deref().unwrap_or("unknown error")
            );
        } else {
            println!(
                "{:<28} {:<9} {:>10} {:>6} {:>6} {:>9} {:>7.1}x",
                e.key,
                e.status.label(),
                e.records,
                e.total_sets,
                e.max_set,
                e.required_size,
                e.win()
            );
        }
    }
    println!(
        "resilience: {} ok, {} degraded, {} failed ({:.1}% degraded); \
         {} retries, {} downgrades, {} chunks dropped",
        summary.ok,
        summary.degraded,
        summary.failed,
        summary.degradation_rate() * 100.0,
        summary.retries,
        summary.downgrades,
        summary.chunks_dropped
    );
    println!(
        "working sets: count p50 {:.0} p90 {:.0} p99 {:.0}; \
         max size p50 {:.0} p90 {:.0} p99 {:.0}",
        summary.total_sets.p50,
        summary.total_sets.p90,
        summary.total_sets.p99,
        summary.max_size.p50,
        summary.max_size.p90,
        summary.max_size.p99
    );
    for c in &summary.classes {
        println!(
            "allocation win [{}]: {} entries, mean {:.1}x (min {:.1}x, max {:.1}x)",
            c.class,
            c.entries,
            c.mean_win(),
            c.min_win,
            c.max_win
        );
    }
}

/// `bwsa validate-fleet <fleet.json>` — check an emitted fleet summary
/// against this build's pinned schema fixture and version, mirroring
/// `validate-report`.
fn cmd_validate_fleet(args: &[String]) -> Result<(), CliError> {
    let p = parse(args, &[], &[])?;
    let path = p
        .positionals
        .first()
        .ok_or_else(|| usage_err("validate-fleet needs a fleet summary JSON file"))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?;
    let doc = Json::parse(&text).map_err(|e| runtime_err(format!("{path}: {e}")))?;
    let version = doc
        .get("fleet_summary_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| runtime_err(format!("{path}: missing fleet_summary_version")))?;
    if version != FLEET_SUMMARY_VERSION {
        return Err(runtime_err(format!(
            "{path}: fleet_summary_version {version}, this build validates version {FLEET_SUMMARY_VERSION}"
        )));
    }
    // Subset check, same contract as validate-report: a real summary may
    // omit shapes the canonical fixture pins (a clean corpus has no
    // string-typed `error`), but must not introduce unknown paths.
    let known: std::collections::BTreeSet<&str> = FLEET_SUMMARY_SCHEMA.lines().collect();
    let shape = schema_shape(&doc);
    let unknown: Vec<&str> = shape
        .lines()
        .filter(|line| !line.is_empty() && !known.contains(line))
        .collect();
    if !unknown.is_empty() {
        return Err(runtime_err(format!(
            "{path}: shape differs from the version-{FLEET_SUMMARY_VERSION} schema; unknown fields:\n  {}",
            unknown.join("\n  ")
        )));
    }
    println!("{path}: valid fleet summary (version {version})");
    Ok(())
}

/// `bwsa serve <socket> [...]` — run the multi-tenant analysis daemon
/// until a drain signal, then exit 0. Malformed flags and bind failures
/// are both invocation errors (exit 2); request-level failures never
/// reach this function — they are answered as typed error frames.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let p = parse(
        args,
        &[
            "workers",
            "queue",
            "max-concurrent",
            "max-bytes-mb",
            "deadline-seconds",
            "retries",
            "max-rss-mb",
            "seed",
            "corpus-cache",
        ],
        &[],
    )?;
    let socket = p
        .positionals
        .first()
        .ok_or_else(|| usage_err("serve needs a socket path"))?;
    if p.positionals.len() > 1 {
        return Err(usage_err(format!(
            "unexpected argument {:?}",
            p.positionals[1]
        )));
    }
    let positive_u32 = |name: &str, default: u32| -> Result<u32, CliError> {
        match p.value(name) {
            None => Ok(default),
            Some(v) => {
                let n: u32 = v
                    .parse()
                    .map_err(|_| usage_err(format!("bad --{name} {v:?}")))?;
                if n == 0 {
                    return Err(usage_err(format!("--{name} must be positive")));
                }
                Ok(n)
            }
        }
    };
    let mut config = ServerConfig::new(socket);
    config.admission = AdmissionConfig {
        workers: positive_u32("workers", 4)?,
        shed_watermark: match p.value("queue") {
            None => 16,
            Some(v) => v
                .parse()
                .map_err(|_| usage_err(format!("bad --queue {v:?}")))?,
        },
        jitter_seed: match p.value("seed") {
            None => AdmissionConfig::default().jitter_seed,
            Some(v) => v
                .parse()
                .map_err(|_| usage_err(format!("bad --seed {v:?}")))?,
        },
    };
    config.quotas = TenantQuotas {
        max_concurrent: positive_u32("max-concurrent", 4)?,
        max_in_flight_bytes: match p.value("max-bytes-mb") {
            None => TenantQuotas::default().max_in_flight_bytes,
            Some(v) => {
                let mb: u64 = v
                    .parse()
                    .map_err(|_| usage_err(format!("bad --max-bytes-mb {v:?}")))?;
                if mb == 0 {
                    return Err(usage_err("--max-bytes-mb must be positive"));
                }
                mb * 1024 * 1024
            }
        },
    };
    config.request_deadline = match p.value("deadline-seconds") {
        None => Some(Duration::from_secs(60)),
        Some(v) => {
            let secs: f64 = v
                .parse()
                .map_err(|_| usage_err(format!("bad --deadline-seconds {v:?}")))?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err(usage_err("--deadline-seconds must be positive"));
            }
            Some(Duration::from_secs_f64(secs))
        }
    };
    if let Some(v) = p.value("retries") {
        config.supervisor.retries = v
            .parse()
            .map_err(|_| usage_err(format!("bad --retries {v:?}")))?;
    }
    if let Some(v) = p.value("max-rss-mb") {
        let mb: u64 = v
            .parse()
            .map_err(|_| usage_err(format!("bad --max-rss-mb {v:?}")))?;
        if mb == 0 {
            return Err(usage_err("--max-rss-mb must be positive"));
        }
        config.supervisor.max_rss_bytes = Some(mb * 1024 * 1024);
    }
    // Per-request deadlines use the thread-local watchdog; the
    // supervisor's process-global deadline stays off so concurrent
    // requests cannot clobber each other.
    config.supervisor.max_wall = None;
    if let Some(dir) = p.value("corpus-cache") {
        config.corpus_cache = Some(std::path::PathBuf::from(dir));
    }

    // An unusable socket is an invocation error, same class as a
    // malformed flag: nothing was served yet, exit 2.
    let server = Server::bind(config).map_err(|e| usage_err(e.to_string()))?;
    signal::install_handlers();
    eprintln!(
        "bwsa-server: listening on {socket} (SIGTERM or `bwsa client {socket} shutdown` to drain)"
    );
    server.run().map_err(|e| runtime_err(e.to_string()))?;
    eprintln!("bwsa-server: drained cleanly");
    Ok(())
}

/// `bwsa client <socket> <action> [...]` — one request against a running
/// daemon. Server-side typed errors print to stderr and exit 1.
fn cmd_client(args: &[String]) -> Result<(), CliError> {
    let p = parse(
        args,
        &["tenant", "threshold", "table", "window", "jobs", "retries"],
        &["classify"],
    )?;
    let socket = p
        .positionals
        .first()
        .ok_or_else(|| usage_err("client needs a socket path"))?;
    let action = p.positionals.get(1).ok_or_else(|| {
        usage_err(
            "client needs an action: ping|analyze|subscribe|allocate|corpus|report|status|shutdown",
        )
    })?;
    let tenant = p.value("tenant").unwrap_or("cli");
    let threshold = match p.value("threshold") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| usage_err(format!("bad threshold {v:?}")))?,
        ),
    };
    let retries: u32 = match p.value("retries") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| usage_err(format!("bad --retries {v:?}")))?,
    };
    let jobs = jobs_of(&p)?.unwrap_or(0) as u64;
    // Read and re-encode the trace once, before the retry loop: a shed
    // request retries the same bytes instead of re-touching the file.
    let upload: Option<Vec<u8>> = match action.as_str() {
        "analyze" => {
            let path = p
                .positionals
                .get(2)
                .ok_or_else(|| usage_err("client analyze needs a trace file"))?;
            Some(trace_upload_bytes(path)?)
        }
        "report" => {
            let path = p
                .positionals
                .get(2)
                .ok_or_else(|| usage_err("client report needs a trace file"))?;
            Some(trace_upload_bytes(path)?)
        }
        "subscribe" => {
            let path = p
                .positionals
                .get(2)
                .ok_or_else(|| usage_err("client subscribe needs a trace file"))?;
            Some(trace_upload_bytes(path)?)
        }
        "allocate" => {
            let path = p
                .positionals
                .get(2)
                .ok_or_else(|| usage_err("client allocate needs a trace file"))?;
            Some(trace_upload_bytes(path)?)
        }
        _ => None,
    };
    // Rejections with a retry-after hint (overload sheds) are worth
    // riding out: sleep at least the server's hint, plus decorrelated
    // jitter so a herd of shed clients does not stampede back in step.
    let mut backoff =
        supervisor::Backoff::with_cap(Duration::from_millis(25), Duration::from_millis(2_000));
    let mut rng = DetRng::new(0xc11e_0000 ^ u64::from(std::process::id()));
    let mut attempt: u32 = 0;
    let response = loop {
        let mut client = Client::connect(socket, tenant).map_err(|e| runtime_err(e.to_string()))?;
        let response = match action.as_str() {
            "ping" => client.ping(),
            "status" => client.status(),
            "shutdown" => client.shutdown(),
            "analyze" => client.analyze(upload.clone().unwrap(), threshold),
            "report" => client.report(upload.clone().unwrap(), threshold),
            "subscribe" => {
                let spec = p
                    .value("window")
                    .ok_or_else(|| usage_err("client subscribe needs --window N[i]"))?;
                let config = WindowConfig::parse(spec)
                    .map_err(|e| usage_err(format!("bad --window value: {e}")))?;
                client.subscribe(
                    upload.clone().unwrap(),
                    threshold,
                    config.interval(),
                    config.unit() == bwsa::core::WindowUnit::Instructions,
                    |json| print!("{json}"),
                )
            }
            "allocate" => {
                let table: u64 = match p.value("table") {
                    None => 1024,
                    Some(v) => v
                        .parse()
                        .map_err(|_| usage_err(format!("bad --table {v:?}")))?,
                };
                client.allocate(upload.clone().unwrap(), threshold, table, p.has("classify"))
            }
            "corpus" => {
                let path = p
                    .positionals
                    .get(2)
                    .ok_or_else(|| usage_err("client corpus needs a manifest path"))?;
                // The manifest path is server-local: nothing is uploaded,
                // the daemon reads the traces off its own filesystem.
                client.corpus(path, threshold, jobs)
            }
            other => {
                return Err(usage_err(format!(
                    "unknown client action {other:?} (ping|analyze|subscribe|allocate|corpus|report|status|shutdown)"
                )))
            }
        };
        match response.map_err(|e| runtime_err(e.to_string()))? {
            Response::Error {
                code,
                message,
                retry_after_ms: Some(ms),
            } if attempt < retries => {
                attempt += 1;
                let wait = Duration::from_millis(ms).max(backoff.delay_jittered(&mut rng));
                eprintln!(
                    "server busy ({code}): {message}; retry {attempt}/{retries} in {}ms",
                    wait.as_millis()
                );
                std::thread::sleep(wait);
            }
            terminal => break terminal,
        }
    };
    match response {
        Response::Ok(json) => {
            print!("{json}");
            Ok(())
        }
        // The client only surfaces terminal frames here; window frames
        // were already printed by the subscribe callback.
        Response::Window(json) => {
            print!("{json}");
            Ok(())
        }
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => {
            let hint = retry_after_ms
                .map(|ms| format!(" (retry after {ms}ms)"))
                .unwrap_or_default();
            Err(runtime_err(format!(
                "server refused ({code}): {message}{hint}"
            )))
        }
    }
}

/// Reads a trace file into the bytes the daemon expects (BWSS2 streams
/// and BWSS3 columnar files travel as-is), re-encoding BWST binaries on
/// the fly.
fn trace_upload_bytes(path: &str) -> Result<Vec<u8>, CliError> {
    match detect_format(path)? {
        TraceFormat::Bwss | TraceFormat::Bwss3 => {
            std::fs::read(path).map_err(|e| runtime_err(format!("cannot read {path}: {e}")))
        }
        TraceFormat::Bwst => {
            let file =
                File::open(path).map_err(|e| runtime_err(format!("cannot open {path}: {e}")))?;
            let trace = trace_io::read_binary(BufReader::new(file))
                .map_err(|e| runtime_err(format!("cannot read {path}: {e}")))?;
            let mut bytes = Vec::new();
            let mut writer = StreamWriter::new(&mut bytes, &trace.meta().name)
                .map_err(|e| runtime_err(format!("cannot encode {path}: {e}")))?;
            for record in trace.records() {
                writer
                    .push(*record)
                    .map_err(|e| runtime_err(format!("cannot encode {path}: {e}")))?;
            }
            writer
                .finish(trace.meta().total_instructions)
                .map_err(|e| runtime_err(format!("cannot encode {path}: {e}")))?;
            Ok(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_splits_flags_and_positionals() {
        let p = parse(
            &strs(&["file.bwst", "--table", "128", "--classify"]),
            &["table"],
            &["classify"],
        )
        .unwrap();
        assert_eq!(p.positionals, vec!["file.bwst"]);
        assert_eq!(p.value("table"), Some("128"));
        assert!(p.has("classify"));
        assert!(!p.has("table2"));
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        assert!(matches!(
            parse(&strs(&["--nope"]), &[], &[]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&strs(&["--table"]), &["table"], &[]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unknown_subcommand_is_a_usage_error() {
        assert!(matches!(
            run(&strs(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn missing_file_is_a_runtime_error() {
        assert!(matches!(
            run(&strs(&["analyze", "/no/such/file.bwst"])),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn bad_flag_values_are_usage_errors() {
        assert!(matches!(
            run(&strs(&["analyze", "x.bwst", "--threshold", "many"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&strs(&["generate", "pgp", "--format", "xml"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            checkpoint_cadence(
                &parse(
                    &strs(&["--checkpoint-every", "8"]),
                    &["checkpoint-every"],
                    &[]
                )
                .unwrap()
            ),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn help_succeeds() {
        assert!(run(&strs(&["help"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn predictor_names_resolve() {
        let trace = Trace::new("t");
        for name in [
            "pag", "free", "bimodal", "gshare", "gag", "hybrid", "agree", "bimode", "profile",
        ] {
            assert!(predictor_by_name(name, &trace).is_ok(), "{name}");
        }
        assert!(predictor_by_name("nope", &trace).is_err());
        for name in ["pag", "free", "bimodal", "gshare"] {
            assert!(checkpointable_by_name(name).is_ok(), "{name}");
        }
        assert!(matches!(
            checkpointable_by_name("hybrid"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn jobs_flag_is_validated_before_touching_the_trace() {
        // Bad values are usage errors even when the file doesn't exist.
        for bad in ["0", "many", "-3", "1.5"] {
            assert!(
                matches!(
                    run(&strs(&["analyze", "/no/such.bwst", "--jobs", bad])),
                    Err(CliError::Usage(_))
                ),
                "--jobs {bad}"
            );
            assert!(
                matches!(
                    run(&strs(&["simulate", "/no/such.bwst", "--jobs", bad])),
                    Err(CliError::Usage(_))
                ),
                "--jobs {bad}"
            );
        }
        let p = parse(&strs(&["--jobs", "4"]), &["jobs"], &[]).unwrap();
        assert_eq!(jobs_of(&p).unwrap(), Some(4));
        assert_eq!(jobs_of(&parse(&[], &["jobs"], &[]).unwrap()).unwrap(), None);
    }

    #[test]
    fn checkpointed_analysis_rejects_parallel_jobs() {
        // Sequential by contract: explicit --jobs > 1 with --checkpoint or
        // --resume is a usage error, caught before any I/O.
        assert!(matches!(
            run(&strs(&[
                "analyze",
                "/no/such.bwss",
                "--checkpoint",
                "c.bwck",
                "--jobs",
                "2"
            ])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&strs(&[
                "analyze",
                "/no/such.bwss",
                "--resume",
                "c.bwck",
                "--jobs",
                "8"
            ])),
            Err(CliError::Usage(_))
        ));
        // --jobs 1 is explicitly sequential and stays allowed; the missing
        // file is then a runtime error, proving the usage gate passed.
        assert!(matches!(
            run(&strs(&[
                "analyze",
                "/no/such.bwss",
                "--checkpoint",
                "c.bwck",
                "--jobs",
                "1"
            ])),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn parallel_analysis_output_matches_serial_for_both_formats() {
        let dir = std::env::temp_dir().join("bwsa_cli_jobs_test");
        std::fs::create_dir_all(&dir).unwrap();
        for format in ["bwst", "bwss"] {
            let out = dir.join(format!("t.{format}"));
            let out_s = out.to_str().unwrap().to_owned();
            run(&strs(&[
                "generate", "pgp", "--scale", "0.01", "--format", format, "-o", &out_s,
            ]))
            .unwrap();
            run(&strs(&[
                "analyze",
                &out_s,
                "--threshold",
                "3",
                "--jobs",
                "1",
            ]))
            .unwrap();
            run(&strs(&[
                "analyze",
                &out_s,
                "--threshold",
                "3",
                "--jobs",
                "3",
            ]))
            .unwrap();
            run(&strs(&["simulate", &out_s, "--jobs", "2"])).unwrap();
            std::fs::remove_file(out).unwrap();
        }
    }

    #[test]
    fn checkpoint_cadence_defaults_to_64_chunks() {
        let p = parse(&strs(&["--checkpoint", "c.bwck"]), &["checkpoint"], &[]).unwrap();
        let (path, every) = checkpoint_cadence(&p).unwrap().unwrap();
        assert_eq!(path, "c.bwck");
        assert_eq!(every, 64 * DEFAULT_CHUNK_RECORDS as u64);
        let none = parse(&strs(&[]), &[], &[]).unwrap();
        assert!(checkpoint_cadence(&none).unwrap().is_none());
    }

    #[test]
    fn generate_analyze_allocate_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("bwsa_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.bwst");
        let out_s = out.to_str().unwrap().to_owned();
        run(&strs(&["generate", "pgp", "--scale", "0.01", "-o", &out_s])).unwrap();
        run(&strs(&["analyze", &out_s, "--threshold", "3"])).unwrap();
        run(&strs(&[
            "allocate",
            &out_s,
            "--table",
            "64",
            "--threshold",
            "3",
            "--classify",
        ]))
        .unwrap();
        run(&strs(&["simulate", &out_s, "--predictor", "pag"])).unwrap();
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn streamed_trace_roundtrips_through_every_subcommand() {
        let dir = std::env::temp_dir().join("bwsa_cli_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.bwss");
        let out_s = out.to_str().unwrap().to_owned();
        run(&strs(&[
            "generate", "pgp", "--scale", "0.01", "--format", "bwss", "-o", &out_s,
        ]))
        .unwrap();
        assert_eq!(detect_format(&out_s).unwrap(), TraceFormat::Bwss);
        run(&strs(&["analyze", &out_s, "--threshold", "3"])).unwrap();
        run(&strs(&["simulate", &out_s, "--predictor", "gshare"])).unwrap();
        run(&strs(&[
            "allocate",
            &out_s,
            "--table",
            "64",
            "--threshold",
            "3",
        ]))
        .unwrap();
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn report_flag_values_are_validated() {
        assert!(matches!(
            run(&strs(&["analyze", "/no/such.bwst", "--report", "xml"])),
            Err(CliError::Usage(_))
        ));
        let p = parse(&strs(&["--report", "json"]), &["report"], &[]).unwrap();
        let spec = report_spec(&p).unwrap();
        assert!(spec.wanted());
        assert!(spec.json_only());
        let p = parse(&strs(&["--metrics", "m.json"]), &["report", "metrics"], &[]).unwrap();
        let spec = report_spec(&p).unwrap();
        assert!(spec.wanted());
        assert!(!spec.json_only(), "--metrics alone keeps stdout human");
        let none = report_spec(&parse(&[], &["report"], &[]).unwrap()).unwrap();
        assert!(!none.wanted());
    }

    #[test]
    fn every_reporting_subcommand_emits_a_valid_versioned_report() {
        let dir = std::env::temp_dir().join("bwsa_cli_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.bwst");
        let trace_s = trace.to_str().unwrap().to_owned();
        run(&strs(&[
            "generate", "pgp", "--scale", "0.01", "-o", &trace_s,
        ]))
        .unwrap();
        for (extra, name) in [
            (vec!["analyze"], "analyze.json"),
            (vec!["analyze", "--jobs", "3"], "analyze_par.json"),
            (
                vec!["allocate", "--table", "64", "--classify"],
                "alloc.json",
            ),
            (vec!["simulate", "--predictor", "pag"], "sim.json"),
        ] {
            let metrics = dir.join(name);
            let metrics_s = metrics.to_str().unwrap().to_owned();
            let mut args = vec![extra[0].to_owned(), trace_s.clone()];
            args.extend(extra[1..].iter().map(|s| s.to_string()));
            args.extend(["--metrics".to_owned(), metrics_s.clone()]);
            run(&args).unwrap_or_else(|e| panic!("{name}: {e:?}"));
            run(&strs(&["validate-report", &metrics_s]))
                .unwrap_or_else(|e| panic!("{name}: {e:?}"));
            let doc = Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
            assert_eq!(
                doc.get("run_report_version").and_then(Json::as_u64),
                Some(RUN_REPORT_VERSION),
                "{name}"
            );
            std::fs::remove_file(metrics).unwrap();
        }
        std::fs::remove_file(trace).unwrap();
    }

    #[test]
    fn analyze_report_times_every_pipeline_stage() {
        let dir = std::env::temp_dir().join("bwsa_cli_stage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.bwst");
        let trace_s = trace.to_str().unwrap().to_owned();
        run(&strs(&[
            "generate", "pgp", "--scale", "0.01", "-o", &trace_s,
        ]))
        .unwrap();
        let metrics = dir.join("m.json");
        let metrics_s = metrics.to_str().unwrap().to_owned();
        run(&strs(&["analyze", &trace_s, "--metrics", &metrics_s])).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        let stages: Vec<String> = match doc.get("stages") {
            Some(Json::Array(items)) => items
                .iter()
                .filter_map(|s| s.get("name").and_then(Json::as_str).map(str::to_owned))
                .collect(),
            other => panic!("stages missing: {other:?}"),
        };
        for required in [
            "ingest",
            "shard_summarize",
            "shard_combine",
            "shard_detect",
            "conflict_prune",
            "working_sets",
            "classify",
        ] {
            assert!(
                stages.iter().any(|s| s == required),
                "missing {required} in {stages:?}"
            );
        }
        std::fs::remove_file(metrics).unwrap();
        std::fs::remove_file(trace).unwrap();
    }

    #[test]
    fn validate_report_rejects_garbage_and_wrong_versions() {
        let dir = std::env::temp_dir().join("bwsa_cli_validate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json at all").unwrap();
        assert!(matches!(
            run(&strs(&["validate-report", garbage.to_str().unwrap()])),
            Err(CliError::Runtime(_))
        ));
        let wrong = dir.join("wrong_version.json");
        std::fs::write(&wrong, "{\"run_report_version\": 999}").unwrap();
        let err = run(&strs(&["validate-report", wrong.to_str().unwrap()])).unwrap_err();
        match err {
            CliError::Runtime(msg) => assert!(msg.contains("999"), "{msg}"),
            other => panic!("{other:?}"),
        }
        let alien = dir.join("alien_field.json");
        std::fs::write(
            &alien,
            format!("{{\"run_report_version\": {RUN_REPORT_VERSION}, \"surprise\": true}}"),
        )
        .unwrap();
        assert!(matches!(
            run(&strs(&["validate-report", alien.to_str().unwrap()])),
            Err(CliError::Runtime(_))
        ));
        std::fs::remove_file(garbage).unwrap();
        std::fs::remove_file(wrong).unwrap();
        std::fs::remove_file(alien).unwrap();
    }

    #[test]
    fn supervisor_flags_are_validated_before_touching_the_trace() {
        // Bad values are usage errors even when the file doesn't exist.
        for (flag, bad) in [
            ("--retries", "many"),
            ("--retries", "-1"),
            ("--max-seconds", "0"),
            ("--max-seconds", "inf"),
            ("--max-seconds", "soon"),
            ("--max-rss-mb", "0"),
            ("--max-rss-mb", "lots"),
        ] {
            assert!(
                matches!(
                    run(&strs(&["analyze", "/no/such.bwst", flag, bad])),
                    Err(CliError::Usage(_))
                ),
                "analyze {flag} {bad}"
            );
            assert!(
                matches!(
                    run(&strs(&["allocate", "/no/such.bwst", flag, bad])),
                    Err(CliError::Usage(_))
                ),
                "allocate {flag} {bad}"
            );
        }
        // No supervisor flags means no supervisor.
        let p = parse(&[], &["retries"], &[]).unwrap();
        assert!(supervisor_of(&p).unwrap().is_none());
        // Any one flag turns supervision on with defaults for the rest.
        let p = parse(&strs(&["--retries", "5"]), &["retries"], &[]).unwrap();
        let config = supervisor_of(&p).unwrap().unwrap();
        assert_eq!(config.retries, 5);
        assert!(config.max_wall.is_none());
        assert!(config.max_rss_bytes.is_none());
        let p = parse(
            &strs(&["--max-seconds", "1.5", "--max-rss-mb", "64"]),
            &["max-seconds", "max-rss-mb"],
            &[],
        )
        .unwrap();
        let config = supervisor_of(&p).unwrap().unwrap();
        assert_eq!(config.max_wall, Some(Duration::from_millis(1500)));
        assert_eq!(config.max_rss_bytes, Some(64 * 1024 * 1024));
    }

    #[test]
    fn supervised_analyze_and_allocate_report_the_resilience_section() {
        let dir = std::env::temp_dir().join("bwsa_cli_supervised_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.bwst");
        let trace_s = trace.to_str().unwrap().to_owned();
        run(&strs(&[
            "generate", "pgp", "--scale", "0.01", "-o", &trace_s,
        ]))
        .unwrap();
        for (extra, name) in [
            (vec!["analyze"], "analyze.json"),
            (vec!["analyze", "--jobs", "2"], "analyze_par.json"),
            (vec!["allocate", "--table", "64"], "alloc.json"),
        ] {
            let metrics = dir.join(name);
            let metrics_s = metrics.to_str().unwrap().to_owned();
            let mut args = vec![extra[0].to_owned(), trace_s.clone()];
            args.extend(extra[1..].iter().map(|s| s.to_string()));
            args.extend(
                [
                    "--retries",
                    "2",
                    "--max-rss-mb",
                    "1000000",
                    "--metrics",
                    &metrics_s,
                ]
                .map(str::to_owned),
            );
            run(&args).unwrap_or_else(|e| panic!("{name}: {e:?}"));
            run(&strs(&["validate-report", &metrics_s]))
                .unwrap_or_else(|e| panic!("{name}: {e:?}"));
            let doc = Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
            let resilience = doc.get("resilience").unwrap_or_else(|| panic!("{name}"));
            assert!(
                matches!(resilience.get("supervised"), Some(Json::Bool(true))),
                "{name}"
            );
            assert_eq!(
                resilience.get("attempts").and_then(Json::as_u64),
                Some(1),
                "{name}: fault-free run needs exactly one attempt"
            );
            std::fs::remove_file(metrics).unwrap();
        }
        std::fs::remove_file(trace).unwrap();
    }

    #[test]
    fn torn_checkpoint_resumes_from_the_rotated_ancestor() {
        let dir = std::env::temp_dir().join("bwsa_cli_torn_ck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.bwss");
        let trace_s = trace.to_str().unwrap().to_owned();
        // 17500 records at chunk cadence 1 (4096 records) -> several
        // checkpoint writes, so rotation leaves a `.prev` ancestor.
        run(&strs(&[
            "generate", "pgp", "--scale", "0.05", "--format", "bwss", "-o", &trace_s,
        ]))
        .unwrap();
        let ck = dir.join("t.bwck");
        let ck_s = ck.to_str().unwrap().to_owned();
        run(&strs(&[
            "analyze",
            &trace_s,
            "--checkpoint",
            &ck_s,
            "--checkpoint-every",
            "1",
        ]))
        .unwrap();
        let prev = dir.join("t.bwck.prev");
        assert!(prev.exists(), "rotation must keep the previous checkpoint");
        // Tear the newest checkpoint, as a crash mid-write on a less
        // forgiving filesystem would.
        let good = std::fs::read(&ck).unwrap();
        std::fs::write(&ck, &good[..good.len() / 2]).unwrap();
        // Resume falls back to the rotated ancestor and completes.
        run(&strs(&["analyze", &trace_s, "--resume", &ck_s]))
            .expect("resume must fall back to the .prev checkpoint");
        // With the ancestor gone too, the failure is a typed runtime error.
        std::fs::remove_file(&prev).unwrap();
        assert!(matches!(
            run(&strs(&["analyze", &trace_s, "--resume", &ck_s])),
            Err(CliError::Runtime(_))
        ));
        std::fs::remove_file(trace).unwrap();
        std::fs::remove_file(ck).unwrap();
    }

    #[test]
    fn convert_roundtrips_record_identical_across_all_formats() {
        let dir = std::env::temp_dir().join("bwsa_cli_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let orig = dir.join("t.bwst");
        let orig_s = orig.to_str().unwrap().to_owned();
        run(&strs(&[
            "generate", "pgp", "--scale", "0.01", "-o", &orig_s,
        ]))
        .unwrap();
        // bwst -> bws3 -> bwss -> bwst, target format inferred from the
        // extension each hop.
        let c3 = dir.join("t.bws3");
        let c3_s = c3.to_str().unwrap().to_owned();
        let cs = dir.join("t.bwss");
        let cs_s = cs.to_str().unwrap().to_owned();
        let back = dir.join("back.bwst");
        let back_s = back.to_str().unwrap().to_owned();
        run(&strs(&["convert", &orig_s, &c3_s])).unwrap();
        run(&strs(&["convert", &c3_s, &cs_s])).unwrap();
        run(&strs(&["convert", &cs_s, &back_s])).unwrap();
        assert_eq!(detect_format(&c3_s).unwrap(), TraceFormat::Bwss3);
        let a = trace_io::read_binary(BufReader::new(File::open(&orig).unwrap())).unwrap();
        let b = trace_io::read_binary(BufReader::new(File::open(&back).unwrap())).unwrap();
        assert_eq!(a.records(), b.records(), "round trip must be identical");
        assert_eq!(a.meta().total_instructions, b.meta().total_instructions);
        // Every analysis path accepts the columnar file.
        run(&strs(&["analyze", &c3_s, "--threshold", "3"])).unwrap();
        run(&strs(&[
            "analyze",
            &c3_s,
            "--threshold",
            "3",
            "--jobs",
            "3",
        ]))
        .unwrap();
        run(&strs(&["analyze", &c3_s, "--window", "2000"])).unwrap();
        run(&strs(&["simulate", &c3_s, "--predictor", "pag"])).unwrap();
        run(&strs(&["allocate", &c3_s, "--table", "64"])).unwrap();
        for f in [orig, c3, cs, back] {
            std::fs::remove_file(f).unwrap();
        }
    }

    #[test]
    fn convert_validates_flags_and_extensions() {
        assert!(matches!(
            run(&strs(&["convert", "only-one-arg"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&strs(&["convert", "a.bwst", "b.xml"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&strs(&["convert", "a.bwst", "b.bws3", "--format", "xml"])),
            Err(CliError::Usage(_))
        ));
        // Valid flags but missing input: a runtime error, proving the
        // usage gate passed.
        assert!(matches!(
            run(&strs(&["convert", "/no/such.bwst", "b.bws3"])),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn bwss3_trace_rejects_checkpoint_flags() {
        let dir = std::env::temp_dir().join("bwsa_cli_bws3_ckflag_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.bws3");
        let out_s = out.to_str().unwrap().to_owned();
        run(&strs(&[
            "generate", "pgp", "--scale", "0.01", "--format", "bwss3", "-o", &out_s,
        ]))
        .unwrap();
        assert!(matches!(
            run(&strs(&["analyze", &out_s, "--checkpoint", "c.bwck"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&strs(&["analyze", &out_s, "--resume", "c.bwck"])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn bwst_trace_rejects_checkpoint_flags() {
        let dir = std::env::temp_dir().join("bwsa_cli_ckflag_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.bwst");
        let out_s = out.to_str().unwrap().to_owned();
        run(&strs(&["generate", "pgp", "--scale", "0.01", "-o", &out_s])).unwrap();
        assert!(matches!(
            run(&strs(&["analyze", &out_s, "--checkpoint", "c.bwck"])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(out).unwrap();
    }
}
