//! Offline stub of `serde_derive`.
//!
//! The real derive generates `Serialize`/`Deserialize` impls; the stub's
//! sibling `serde` crate blanket-implements both traits for every type, so
//! these derives only need to *resolve* and accept `#[serde(...)]` helper
//! attributes. They expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
