//! Offline stub of `rand` 0.8.
//!
//! Implements exactly the surface this workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::SmallRng`] — on top of xoshiro256++ (the algorithm the real
//! `SmallRng` uses on 64-bit targets). Streams are deterministic for a
//! given seed, which is all the workload generators and tests rely on;
//! they are *not* byte-identical to the real crate's streams.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u: f64 = Standard::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        let u: f64 = Standard::from_rng(rng);
        lo + u * (hi - lo)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value whose type implements [`Standard`].
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0,1]");
        let u: f64 = Standard::from_rng(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 exactly
    /// like the real crate does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point.
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x0123_4567, 0x89AB_CDEF];
            }
            SmallRng { s }
        }
    }

    /// Alias: this stub backs `StdRng` with the same engine.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(6);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
    }
}
