//! Offline stub of `criterion`.
//!
//! A minimal wall-clock bench harness with criterion's API shape: groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotation, and the `criterion_group!` / `criterion_main!`
//! macros. No statistics, plots, or reports — each benchmark is timed
//! over a short fixed budget and one `name ... time per iter` line is
//! printed. Designed so `cargo test`/`cargo bench` complete quickly in a
//! hermetic environment while keeping bench sources compiling unchanged.

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark.
///
/// Cargo passes `--bench` when invoked as `cargo bench`; without it (e.g.
/// the smoke-run `cargo test` gives bench targets) each routine runs once,
/// mirroring real criterion's test mode.
fn measure_budget() -> Duration {
    static BUDGET: OnceLock<Duration> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        if std::env::args().any(|a| a == "--bench") {
            Duration::from_millis(200)
        } else {
            Duration::ZERO
        }
    })
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (recorded, reported alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup; ignored by the stub.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Measures closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let budget = measure_budget();
        let start = Instant::now();
        let mut iters = 1u64;
        black_box(routine());
        while start.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        self.record(start.elapsed(), iters);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let budget = measure_budget();
        let first = Instant::now();
        black_box(routine(setup()));
        let mut measured = first.elapsed();
        let mut iters = 1u64;
        while measured < budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.record(measured, iters);
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        let iters = iters.max(1);
        self.iters = iters;
        self.nanos_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
    }
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts and ignores CLI arguments (criterion API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, None, f);
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, f);
        self
    }

    /// Runs a benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.nanos_per_iter {
        Some(ns) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) if ns > 0.0 => {
                    format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
                }
                Some(Throughput::Bytes(n)) if ns > 0.0 => {
                    format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
                }
                _ => String::new(),
            };
            println!("bench {label:<40} {:>14.0} ns/iter{rate}", ns);
        }
        None => println!("bench {label:<40} (no measurement)"),
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("trivial", |b| b.iter(|| black_box(2u64 + 2)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("li").label, "li");
    }
}
