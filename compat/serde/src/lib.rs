//! Offline stub of `serde`.
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, and nothing in it actually serialises through serde (there is
//! no `serde_json`/`bincode` backend in the dependency tree — durable
//! artifacts use the hand-rolled checksummed formats in `bwsa-trace`).
//! The derives on workspace types are kept so the public API stays
//! source-compatible with the real serde; this stub makes them resolve:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits blanket-implemented
//!   for every type, so derive output is unnecessary and trait bounds hold.
//! * The derive macros (re-exported from the stub `serde_derive`) expand to
//!   nothing but accept `#[serde(...)]` helper attributes.
//!
//! Swapping the real serde back in is a one-line change in the workspace
//! `Cargo.toml` once a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Stand-ins for the `serde::de` module.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Plain {
        #[serde(default)]
        _x: u32,
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    enum Sum {
        _A,
        _B(u8),
    }

    fn wants_serialize<T: Serialize>(_: &T) {}

    #[test]
    fn derives_resolve_and_bounds_hold() {
        wants_serialize(&Plain { _x: 1 });
        wants_serialize(&Sum::_B(2));
        wants_serialize(&vec![1u8, 2]);
    }
}
