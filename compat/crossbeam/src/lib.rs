//! Offline stub of `crossbeam`.
//!
//! Provides the two APIs this workspace uses: [`thread::scope`],
//! implemented on `std::thread::scope` (stable since Rust 1.63, which
//! post-dates crossbeam's scoped threads), and [`queue::SegQueue`],
//! implemented on a mutexed `VecDeque` rather than a lock-free segment
//! list. The signatures mirror crossbeam's: the scope closure receives a
//! [`thread::Scope`] whose `spawn` passes the scope back into the spawned
//! closure, and the outer call returns `Err` if any spawned thread
//! panicked.

/// Scoped threads.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads that may borrow from the enclosing
    /// scope.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it
        /// can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload if `f` or any spawned thread
    /// panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded multi-producer multi-consumer FIFO queue.
    ///
    /// API-compatible with crossbeam's `SegQueue`; this stand-in trades
    /// the lock-free segment list for a mutex, which is plenty for the
    /// work-distribution queues the workspace uses (one pop per shard or
    /// sweep cell, each followed by orders of magnitude more work).
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes an element to the back of the queue.
        pub fn push(&self, value: T) {
            self.inner.lock().expect("queue poisoned").push_back(value);
        }

        /// Pops the element at the front of the queue, or `None` if empty.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("queue poisoned").pop_front()
        }

        /// Number of elements currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("queue poisoned").len()
        }

        /// Returns `true` if the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> FromIterator<T> for SegQueue<T> {
        fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
            SegQueue {
                inner: Mutex::new(iter.into_iter().collect()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut out = [0u64; 4];
        super::thread::scope(|scope| {
            for (slot, &v) in out.iter_mut().zip(&data) {
                scope.spawn(move |_| *slot = v * 10);
            }
        })
        .unwrap();
        assert_eq!(out, [10, 20, 30, 40]);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn seg_queue_is_fifo() {
        let q = super::queue::SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn seg_queue_drains_across_threads() {
        let q: super::queue::SegQueue<usize> = (0..100).collect();
        let sum = std::sync::atomic::AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    while let Some(v) = q.pop() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert!(q.is_empty());
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 4950);
    }

    #[test]
    fn nested_spawn_compiles() {
        let r = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
