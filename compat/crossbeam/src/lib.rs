//! Offline stub of `crossbeam`.
//!
//! Only [`thread::scope`] is provided — the one API this workspace uses —
//! implemented on `std::thread::scope` (stable since Rust 1.63, which
//! post-dates crossbeam's scoped threads). The signature mirrors
//! crossbeam's: the closure receives a [`thread::Scope`] whose `spawn`
//! passes the scope back into the spawned closure, and the outer call
//! returns `Err` if any spawned thread panicked.

/// Scoped threads.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads that may borrow from the enclosing
    /// scope.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it
        /// can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload if `f` or any spawned thread
    /// panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut out = [0u64; 4];
        super::thread::scope(|scope| {
            for (slot, &v) in out.iter_mut().zip(&data) {
                scope.spawn(move |_| *slot = v * 10);
            }
        })
        .unwrap();
        assert_eq!(out, [10, 20, 30, 40]);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_compiles() {
        let r = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
