//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — [`Strategy`] with `prop_map`/`boxed`, range / tuple /
//! string / collection strategies, `any::<T>()`, [`prop_oneof!`],
//! [`proptest!`], `prop_assert!`/`prop_assert_eq!`, and
//! [`test_runner::ProptestConfig`] — as a deterministic random sampler.
//!
//! Differences from the real crate, deliberately accepted for a hermetic
//! build:
//!
//! * **No shrinking.** A failing case reports the case number and seed so
//!   it can be replayed (the generator is a pure function of test name and
//!   case index), but it is not minimised.
//! * **String strategies** support the character-class-with-counts regex
//!   subset actually used in tests (e.g. `"[a-z]{1,8}"`), not full regex.
//! * Case count defaults to 64 (override with
//!   `ProptestConfig::with_cases`).

pub mod test_runner {
    //! Deterministic case generation and failure reporting.

    use std::fmt;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic RNG: xoshiro256++ seeded from the test identity and
    /// case index, so every run of a test samples the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates the RNG for case `case` of the test named `identity`.
        pub fn deterministic(identity: &str, case: u64) -> Self {
            // FNV-1a over the identity, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in identity.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut state = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut s = [0u64; 4];
            for word in &mut s {
                // SplitMix64 expansion.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Unbiased draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Uniform choice between alternative strategies ([`crate::prop_oneof!`]).
    #[derive(Debug, Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// String strategies from the character-class regex subset
    /// (`"[a-z0-9]{m,n}"`, a bare class meaning `{1,1}`, or a literal).
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((chars, lo, hi)) => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_owned(),
            }
        }
    }

    /// Parses `[class]{m,n}` / `[class]{m}` / `[class]`; returns the
    /// expanded character set and length bounds.
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (a, b) = (cs[i], cs[i + 2]);
                if a > b {
                    return None;
                }
                chars.extend((a..=b).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        if rest.is_empty() {
            return Some((chars, 1, 1));
        }
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((chars, lo, hi))
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical whole-domain strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let identity = concat!(module_path!(), "::", stringify!($name));
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::test_runner::TestRng::deterministic(identity, case);
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        { $body }
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            identity, case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the enclosing property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the enclosing property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::deterministic("t", 0);
        for _ in 0..500 {
            let v = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u8..=3).sample(&mut rng);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn string_class_pattern_is_respected() {
        let mut rng = TestRng::deterministic("s", 1);
        for _ in 0..200 {
            let s = "[a-z]{1,8}".sample(&mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let empty_ok = "[a-c0-9]{0,2}".sample(&mut rng);
            assert!(empty_ok.len() <= 2);
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::deterministic("v", 2);
        let strat =
            prop::collection::vec((0u8..16, any::<bool>(), 1u64..20), 0..50).prop_map(|v| v.len());
        for _ in 0..100 {
            assert!(strat.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![
            (0u32..1).prop_map(|_| 1u32),
            (0u32..1).prop_map(|_| 2u32),
            Just(3u32),
        ];
        let mut rng = TestRng::deterministic("o", 3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(strat.sample(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = {
            let mut rng = TestRng::deterministic("same", 7);
            (0..16).map(|_| (0u64..1000).sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::deterministic("same", 7);
            (0..16).map(|_| (0u64..1000).sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, flips in prop::collection::vec(any::<bool>(), 0..10)) {
            prop_assert!(x < 100);
            prop_assert_eq!(flips.len(), flips.iter().filter(|_| true).count());
        }
    }
}
