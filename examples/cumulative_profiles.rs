//! Cumulative profiles (§5.2): a single-input profile misallocates when
//! the real run exercises different code; merging profiles from several
//! inputs recovers the lost coverage.
//!
//! ```text
//! cargo run --release --example cumulative_profiles
//! ```

use bwsa::core::merge::CumulativeProfile;
use bwsa::predictor::AllocatedIndex;
use bwsa::prelude::*;
use bwsa::trace::BranchTable;

const TABLE: usize = 128;

/// Remaps an allocation from one trace's id space to another's by pc;
/// unseen branches fall back to pc-modulo indexing.
fn remap(alloc: &AllocatedIndex, from: &BranchTable, to: &BranchTable) -> AllocatedIndex {
    let entries = to
        .iter()
        .map(|(_, pc)| from.id_of(pc).and_then(|id| alloc.entry(id)))
        .collect();
    AllocatedIndex::new(alloc.table_size(), entries).expect("entries stay in range")
}

fn rate_with(alloc: &AllocatedIndex, from: &BranchTable, eval: &Trace) -> f64 {
    let mut pag = Pag::paper_with_indexer(BhtIndexer::Allocated(remap(alloc, from, eval.table())));
    simulate(&mut pag, eval).misprediction_rate()
}

fn main() {
    let bench = Benchmark::Ss; // the paper's poster child for input sensitivity
    let threshold = ConflictConfig::with_threshold(20).unwrap();
    let a = bench.generate_scaled(InputSet::A, 0.2);
    let b = bench.generate_scaled(InputSet::B, 0.2);
    println!("input A: {a}");
    println!("input B: {b}\n");

    let pipeline = AnalysisPipeline {
        conflict: threshold,
        ..AnalysisPipeline::new()
    };
    let session_a = bwsa::core::Session::new(&a).with_pipeline(pipeline);
    let analysis_a = session_a.run().expect("serial analysis is infallible");
    let cfg = AllocationConfig::default();
    let alloc_a = analysis_a
        .allocation(bwsa::core::Classified(false), TABLE, &cfg)
        .expect("table size is positive");

    // Merge both inputs' conflict graphs (union id space keyed by pc).
    let mut cumulative = CumulativeProfile::new();
    cumulative.add_trace(&a);
    cumulative.add_trace(&b);
    println!(
        "cumulative profile: {} traces, {} union branches, {} dynamic branches",
        cumulative.traces_merged(),
        cumulative.table().len(),
        cumulative.total_dynamic()
    );
    let merged = cumulative.conflict_analysis(threshold);
    let alloc_union = allocate(&merged.graph, TABLE, &cfg);

    println!("\nevaluating a {TABLE}-entry allocated BHT on input B:");
    let cross = rate_with(&alloc_a.index, a.table(), &b);
    let cumulative_rate = rate_with(&alloc_union.index, cumulative.table(), &b);
    let conventional = simulate(&mut Pag::paper_baseline(), &b).misprediction_rate();
    println!("  profiled on A only      : {:.2}%", cross * 100.0);
    println!(
        "  cumulative profile A+B  : {:.2}%",
        cumulative_rate * 100.0
    );
    println!("  conventional PAg-1024   : {:.2}%", conventional * 100.0);
    println!(
        "\ncumulative profiling recovers {:.2} points over the single-input profile",
        (cross - cumulative_rate) * 100.0
    );
}
