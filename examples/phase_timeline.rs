//! Watch a program's branch working set move through phases, and see
//! mispredictions cluster at the transitions — the paper's future-work
//! hypothesis, live.
//!
//! ```text
//! cargo run --release --example phase_timeline
//! ```

use bwsa::core::phases::PhaseTimeline;
use bwsa::predictor::clustering::{clustering_stats, misprediction_flags};
use bwsa::prelude::*;

const WINDOW: usize = 500;

fn main() {
    let trace = Benchmark::Perl.generate_scaled(InputSet::A, 0.2);
    println!("{trace}\n");

    let timeline = PhaseTimeline::of_trace(&trace, WINDOW);
    let flags = misprediction_flags(&mut Pag::paper_baseline(), &trace);
    let transitions: std::collections::HashSet<usize> =
        timeline.transitions(0.5).into_iter().collect();

    println!("window  ws-size  entered  jaccard  misses  ");
    for (i, w) in timeline.windows.iter().enumerate().take(40) {
        let misses = flags[w.start_index..w.start_index + WINDOW]
            .iter()
            .filter(|&&f| f)
            .count();
        let bar = "#".repeat(misses / 8);
        let marker = if transitions.contains(&i) {
            " <-- phase transition"
        } else {
            ""
        };
        println!(
            "{i:>6}  {:>7}  {:>7}  {:>7.2}  {misses:>6}  {bar}{marker}",
            w.distinct_branches, w.entered, w.jaccard_with_prev
        );
    }
    if timeline.windows.len() > 40 {
        println!("... ({} more windows)", timeline.windows.len() - 40);
    }

    let stats = clustering_stats(&flags, WINDOW);
    println!(
        "\nmean working set per window: {:.1} branches; {} transitions",
        timeline.mean_working_set_size(),
        transitions.len()
    );
    println!(
        "misprediction clustering: Fano factor {:.2} (>1 = clustered), mean run {:.2}, max run {}",
        stats.fano_factor, stats.mean_run_length, stats.max_run_length
    );
}
