//! Export a benchmark's branch conflict graph to Graphviz DOT, with nodes
//! colored by working set — render with `dot -Tsvg conflict.dot -o out.svg`.
//!
//! ```text
//! cargo run --release --example export_dot > conflict.dot
//! ```

use bwsa::graph::dot::{to_dot, DotOptions};
use bwsa::prelude::*;

fn main() {
    // A small slice of pgp keeps the graph renderable.
    let trace = Benchmark::Pgp.generate_scaled(InputSet::A, 0.05);
    let pipeline = AnalysisPipeline {
        conflict: ConflictConfig::with_threshold(10).expect("valid threshold"),
        ..AnalysisPipeline::new()
    };
    let session = bwsa::core::Session::new(&trace).with_pipeline(pipeline);
    let analysis = session.run().expect("serial analysis is infallible");

    // Group nodes by the working set that owns them.
    let mut groups = vec![0u32; analysis.conflict.graph.node_count()];
    for (set_index, set) in analysis.working_sets.sets.iter().enumerate() {
        for &id in set {
            groups[id.index()] = set_index as u32;
        }
    }
    let dot = to_dot(
        &analysis.conflict.graph,
        &DotOptions {
            groups: Some(groups),
            skip_isolated: true,
        },
    );
    println!("{dot}");
    eprintln!(
        "// {} nodes, {} edges, {} working sets — pipe through `dot -Tsvg` to render",
        analysis.conflict.graph.node_count(),
        analysis.conflict.graph.edge_count(),
        analysis.working_sets.report.total_sets
    );
}
