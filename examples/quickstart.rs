//! Quickstart: generate a workload, analyse its branch working sets, and
//! see branch allocation beat conventional BHT indexing.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bwsa::prelude::*;

fn main() {
    // 1. Generate a dynamic conditional-branch trace. In the paper this
    //    came from SimpleScalar running SPECint95; here the synthetic
    //    `compress` profile stands in (20% of the full budget for speed).
    let trace = Benchmark::Compress.generate_scaled(InputSet::A, 0.2);
    println!("trace: {trace}");

    // 2. Run the branch working set analysis (§4): timestamp interleaving,
    //    conflict graph, threshold, working sets, classification.
    let pipeline = AnalysisPipeline {
        conflict: ConflictConfig::with_threshold(20).unwrap(),
        ..AnalysisPipeline::new()
    };
    let session = Session::new(&trace).with_pipeline(pipeline);
    let analysis = session.run().expect("serial analysis is infallible");
    let report = &analysis.working_sets.report;
    println!(
        "working sets: {} sets, avg size {:.1} (static) / {:.1} (dynamic), largest {}",
        report.total_sets, report.avg_static_size, report.avg_dynamic_size, report.max_size
    );
    let (taken, not_taken, mixed) = analysis.classification.counts();
    println!("classification: {taken} biased-taken, {not_taken} biased-not-taken, {mixed} mixed");

    // 3. Branch allocation (§5): assign each branch a BHT entry by graph
    //    coloring, with the two reserved entries for biased branches.
    let allocation = session
        .allocate(Classified(true), 128)
        .expect("table size is positive");
    println!(
        "allocation into 128 entries: residual conflict mass {} over {} pairs",
        allocation.conflict_mass, allocation.conflicting_pairs
    );

    // 4. Compare predictors: conventional PAg vs allocation-indexed PAg vs
    //    the interference-free reference (all 4096-entry PHT).
    let conventional = simulate(&mut Pag::paper_baseline(), &trace);
    let allocated = simulate(
        &mut Pag::paper_with_indexer(BhtIndexer::Allocated(allocation.index)),
        &trace,
    );
    let free = simulate(&mut Pag::interference_free(), &trace);
    println!("\nmisprediction rates:");
    println!(
        "  PAg, 1024-entry pc-indexed BHT : {:.2}%",
        conventional.misprediction_rate() * 100.0
    );
    println!(
        "  PAg, 128-entry allocated BHT   : {:.2}%",
        allocated.misprediction_rate() * 100.0
    );
    println!(
        "  PAg, interference-free BHT     : {:.2}%",
        free.misprediction_rate() * 100.0
    );
    println!(
        "\nallocation at 128 entries is within {:.2} points of interference-free",
        (allocated.misprediction_rate() - free.misprediction_rate()).abs() * 100.0
    );
}
