//! Build a custom phase-structured program with the workload builder and
//! watch its working sets appear in the analysis — a from-scratch tour of
//! the substrate the benchmark suite is made of.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use bwsa::prelude::*;
use bwsa::workload::behavior::BranchBehavior;
use bwsa::workload::builder::{PlannedBranch, ProgramBuilder, RegionPlan};
use bwsa::workload::interp::{execute, InterpConfig};
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);
    let mut builder = ProgramBuilder::new();

    // Region "parse": six mixed branches, one of them a guard.
    let parse = builder.add_region(
        &RegionPlan {
            name: "parse".into(),
            loop_trips: 40,
            branches: (0..6)
                .map(|i| PlannedBranch {
                    behavior: BranchBehavior::Bernoulli {
                        taken_prob: 0.3 + 0.1 * i as f64,
                    },
                    guard: i == 2,
                })
                .collect(),
            block_instrs: (2, 8),
        },
        &mut rng,
    );

    // Region "eval": periodic branches a local-history predictor loves.
    let eval = builder.add_region(
        &RegionPlan {
            name: "eval".into(),
            loop_trips: 60,
            branches: vec![
                PlannedBranch {
                    behavior: BranchBehavior::Pattern {
                        bits: vec![true, true, false],
                    },
                    guard: false,
                },
                PlannedBranch {
                    behavior: BranchBehavior::Pattern {
                        bits: vec![true, false],
                    },
                    guard: false,
                },
                PlannedBranch {
                    behavior: BranchBehavior::Correlated { agree_prob: 0.9 },
                    guard: false,
                },
            ],
            block_instrs: (2, 8),
        },
        &mut rng,
    );

    // Region "emit": highly biased error-checking branches.
    let emit = builder.add_region(
        &RegionPlan {
            name: "emit".into(),
            loop_trips: 50,
            branches: (0..4)
                .map(|_| PlannedBranch {
                    behavior: BranchBehavior::Bernoulli { taken_prob: 0.997 },
                    guard: false,
                })
                .collect(),
            block_instrs: (2, 8),
        },
        &mut rng,
    );

    // Phase schedule: parse → eval → emit, several times over.
    let schedule: Vec<_> = (0..12)
        .flat_map(|_| [parse.func, eval.func, emit.func])
        .collect();
    let program = builder.finish_with_schedule(&schedule, &mut rng);
    println!("{program}");

    let trace = execute(&program, "custom", &InterpConfig::default()).expect("program validates");
    println!("{trace}\n");

    let pipeline = AnalysisPipeline {
        conflict: ConflictConfig::with_threshold(50).unwrap(),
        ..AnalysisPipeline::new()
    };
    let session = bwsa::core::Session::new(&trace).with_pipeline(pipeline);
    let analysis = session.run().expect("serial analysis is infallible");
    println!(
        "found {} working sets (expected 3 — one per region):",
        analysis.working_sets.report.total_sets
    );
    for (i, set) in analysis.working_sets.sets.iter().enumerate() {
        let pcs: Vec<String> = set
            .iter()
            .map(|&id| format!("{}", trace.table().pc_of(id)))
            .collect();
        println!("  set {i}: {} branches: {}", set.len(), pcs.join(" "));
    }
    let (t, n, m) = analysis.classification.counts();
    println!("\nclassification: {t} biased-taken, {n} biased-not-taken, {m} mixed");
    println!("(the emit region's branches should dominate the biased-taken class)");
}
