//! Compare the whole predictor zoo on one workload — the baselines the
//! paper's related-work section is built on, plus the paper's schemes.
//!
//! ```text
//! cargo run --release --example predictor_comparison [benchmark]
//! ```

use bwsa::predictor::{
    Agree, BiMode, Bimodal, Gag, Gap, Gselect, Gshare, Hybrid, Pap, StaticPredictor,
};
use bwsa::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "m88ksim".to_owned());
    let bench = Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name:?}; using m88ksim");
            Benchmark::M88ksim
        });
    let trace = bench.generate_scaled(InputSet::A, 0.25);
    println!("workload: {trace}\n");

    let mut predictors: Vec<Box<dyn BranchPredictor>> = vec![
        Box::new(StaticPredictor::always_taken()),
        Box::new(StaticPredictor::always_not_taken()),
        Box::new(StaticPredictor::from_profile(&trace)),
        Box::new(Bimodal::new(1024)),
        Box::new(Gag::new(12)),
        Box::new(Gap::new(10, 64)),
        Box::new(Gselect::new(6, 6)),
        Box::new(Gshare::new(12)),
        Box::new(BiMode::new(12, 1024)),
        Box::new(Pag::paper_baseline()),
        Box::new(Pag::interference_free()),
        Box::new(Pap::new(BhtIndexer::pc_modulo(128), 10)),
        Box::new(Hybrid::new(Gshare::new(12), Bimodal::new(1024), 1024)),
        Box::new(Agree::new(12, 1024)),
    ];

    let mut results: Vec<_> = predictors
        .iter_mut()
        .map(|p| simulate(&mut **p, &trace))
        .collect();
    results.sort_by(|a, b| {
        a.misprediction_rate()
            .partial_cmp(&b.misprediction_rate())
            .expect("rates are finite")
    });

    println!("{:<34} {:>12} {:>10}", "predictor", "mispredicts", "rate");
    println!("{}", "-".repeat(58));
    for r in &results {
        println!(
            "{:<34} {:>12} {:>9.2}%",
            r.predictor,
            r.mispredictions,
            r.misprediction_rate() * 100.0
        );
    }
    println!("\n(static predictors bound the extremes; two-level schemes cluster at the top)");
}
