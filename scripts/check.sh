#!/usr/bin/env bash
# Offline CI gate: everything a merge must pass, no network required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> all checks passed"
