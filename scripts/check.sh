#!/usr/bin/env bash
# Offline CI gate: everything a merge must pass, no network required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy: no unwrap on library fallible paths"
cargo clippy -p bwsa-resilience -p bwsa-trace -p bwsa-graph -p bwsa-predictor \
    -p bwsa-workload -p bwsa-obs -p bwsa-core -p bwsa-server -p bwsa-corpus --lib \
    -- -D warnings -D clippy::unwrap_used

echo "==> parallel/serial equivalence + golden fixtures"
cargo test -q --test parallel_prop -p bwsa-core
cargo test -q --test golden_regression
cargo test -q --test cli_jobs

echo "==> hot-path engine equivalence (ring vs naive oracle, flat table vs HashMap)"
cargo test -q --test hotpath_prop -p bwsa-core
cargo test -q --test prop -p bwsa-graph

echo "==> windowed equivalence (fold(windows) == whole trace, incremental recoloring oracle)"
cargo test -q --test windowed_equiv -p bwsa-core
cargo test -q --test cli_window

echo "==> observability: instrumented == uninstrumented + report schema"
cargo test -q --test observed_equivalence -p bwsa-core
cargo test -q --test run_report

echo "==> chaos: every failpoint site contained, fuzzed decoders never panic"
cargo test -q --test chaos
cargo test -q --test stream_prop -p bwsa-trace
cargo test -q --test columnar_prop -p bwsa-trace
cargo test -q --test prop -p bwsa-workload

echo "==> server: end-to-end daemon suite + zero-leak accounting properties"
cargo test -q --test server_integration -p bwsa-server
cargo test -q --test quota_prop -p bwsa-server
cargo test -q --test cli_client_retry

echo "==> corpus: fold algebra properties + batch integration + CLI contract"
cargo test -q --test fleet_prop -p bwsa-corpus
cargo test -q --test corpus_integration -p bwsa-corpus
cargo test -q --test cache_prop -p bwsa-corpus
cargo test -q --test cli_corpus
cargo test -q --test fleet_summary

echo "==> run report smoke (--report json validates against the golden schema)"
report_tmp="$(mktemp -d)"
trap 'rm -rf "$report_tmp"' EXIT
bwsa="target/release/bwsa"
"$bwsa" generate pgp --scale 0.01 -o "$report_tmp/pgp.bwst" > /dev/null
"$bwsa" analyze "$report_tmp/pgp.bwst" --report json --metrics "$report_tmp/analyze.json" > /dev/null
"$bwsa" validate-report "$report_tmp/analyze.json"
"$bwsa" simulate "$report_tmp/pgp.bwst" --predictor pag --report json \
    --metrics "$report_tmp/simulate.json" > /dev/null
"$bwsa" validate-report "$report_tmp/simulate.json"

echo "==> windowed analyze smoke (--window summary, sidecar JSON, v3 report validates)"
"$bwsa" analyze "$report_tmp/pgp.bwst" --window 500 \
    --emit-windows "$report_tmp/windows.json" > "$report_tmp/windowed.out"
grep -q "^windows: " "$report_tmp/windowed.out"
grep -q '"windows"' "$report_tmp/windows.json"
"$bwsa" analyze "$report_tmp/pgp.bwst" --window 500 \
    --metrics "$report_tmp/windowed.json" > /dev/null
"$bwsa" validate-report "$report_tmp/windowed.json"
# Malformed --window values are usage errors (exit 2) before any I/O.
if "$bwsa" analyze /no/such.bwst --window 0 2> /dev/null; then
    echo "--window 0 unexpectedly succeeded"; exit 1
else
    rc=$?
    [ "$rc" -eq 2 ] || { echo "--window 0: expected exit 2, got $rc"; exit 1; }
fi

echo "==> columnar convert smoke (BWSS3 round-trip, analysis byte-identical)"
convert_dir="$report_tmp/convert"
mkdir -p "$convert_dir"
"$bwsa" generate li --scale 0.01 -o "$convert_dir/li.bwst" > /dev/null
"$bwsa" convert "$convert_dir/li.bwst" "$convert_dir/li.bws3" > /dev/null
"$bwsa" convert "$convert_dir/li.bws3" "$convert_dir/back.bwst" > /dev/null
cmp "$convert_dir/li.bwst" "$convert_dir/back.bwst"
# The streaming BWSS3 analyze path must print byte-for-byte what the
# in-memory BWST path prints, and windowed sidecars must match too.
"$bwsa" analyze "$convert_dir/li.bwst" > "$convert_dir/bwst.out"
"$bwsa" analyze "$convert_dir/li.bws3" > "$convert_dir/bws3.out"
cmp "$convert_dir/bwst.out" "$convert_dir/bws3.out"
"$bwsa" analyze "$convert_dir/li.bwst" --window 500 \
    --emit-windows "$convert_dir/bwst-windows.json" > /dev/null
"$bwsa" analyze "$convert_dir/li.bws3" --window 500 \
    --emit-windows "$convert_dir/bws3-windows.json" > /dev/null
cmp "$convert_dir/bwst-windows.json" "$convert_dir/bws3-windows.json"

echo "==> corpus smoke (manifest batch → fleet summary validates, order-invariant)"
corpus_dir="$report_tmp/corpus"
mkdir -p "$corpus_dir"
for bench in compress pgp li; do
    "$bwsa" generate "$bench" --scale 0.01 --format bwss \
        -o "$corpus_dir/$bench.bwss" > /dev/null
done
cat > "$corpus_dir/corpus.toml" << 'MANIFEST'
name = "smoke"

[defaults]
threshold = 10
class = "integer"

[[trace]]
path = "compress.bwss"

[[trace]]
path = "pgp.bwss"
class = "crypto"

[[trace]]
path = "li.bwss"
MANIFEST
"$bwsa" corpus "$corpus_dir/corpus.toml" --jobs 2 \
    --emit-fleet "$corpus_dir/fleet.json" > /dev/null
"$bwsa" validate-fleet "$corpus_dir/fleet.json"
# The fleet fold is order- and schedule-invariant: a permuted manifest
# run serially emits byte-identical JSON.
cat > "$corpus_dir/permuted.toml" << 'MANIFEST'
name = "smoke"

[defaults]
threshold = 10
class = "integer"

[[trace]]
path = "li.bwss"

[[trace]]
path = "compress.bwss"

[[trace]]
path = "pgp.bwss"
class = "crypto"
MANIFEST
"$bwsa" corpus "$corpus_dir/permuted.toml" --jobs 1 \
    --emit-fleet "$corpus_dir/fleet_permuted.json" > /dev/null
cmp "$corpus_dir/fleet.json" "$corpus_dir/fleet_permuted.json"
# A dangling manifest entry is a typed usage error (exit 2).
printf 'name = "bad"\n\n[[trace]]\npath = "ghost.bwss"\n' > "$corpus_dir/bad.toml"
if "$bwsa" corpus "$corpus_dir/bad.toml" 2> /dev/null; then
    echo "dangling corpus entry unexpectedly succeeded"; exit 1
else
    rc=$?
    [ "$rc" -eq 2 ] || { echo "dangling entry: expected exit 2, got $rc"; exit 1; }
fi

echo "==> crash-resume smoke (kill -9 mid-batch, --resume replays byte-identically)"
crash_dir="$report_tmp/crash"
mkdir -p "$crash_dir"
cp "$corpus_dir/compress.bwss" "$corpus_dir/pgp.bwss" "$corpus_dir/li.bwss" \
    "$corpus_dir/corpus.toml" "$crash_dir/"
"$bwsa" corpus "$crash_dir/corpus.toml" --no-cache \
    --emit-fleet "$crash_dir/baseline.json" > /dev/null
# Stall the first journal append for 30s, then kill the run mid-batch:
# exactly one entry's result reached the cache before the process died.
BWSA_FAILPOINTS="corpus.journal_append=delay(30000)" \
    "$bwsa" corpus "$crash_dir/corpus.toml" --jobs 1 > /dev/null 2>&1 &
crash_pid=$!
sleep 2
kill -9 "$crash_pid" 2> /dev/null
wait "$crash_pid" 2> /dev/null || true
"$bwsa" corpus "$crash_dir/corpus.toml" --resume \
    --emit-fleet "$crash_dir/resumed.json" > /dev/null 2> "$crash_dir/resume.err"
grep -q "cache: 1 hits, 2 misses" "$crash_dir/resume.err"
cmp "$crash_dir/baseline.json" "$crash_dir/resumed.json"

echo "==> warm cache smoke (second run is all hits, byte-identical, zero analyses)"
"$bwsa" corpus "$crash_dir/corpus.toml" \
    --emit-fleet "$crash_dir/warm.json" > /dev/null 2> "$crash_dir/warm.err"
grep -q "cache: 3 hits, 0 misses" "$crash_dir/warm.err"
cmp "$crash_dir/baseline.json" "$crash_dir/warm.json"

echo "==> bench smoke (single iteration, parallel sweep)"
cargo run --release -p bwsa-bench --bin experiments_all -- --quick --bench compress --jobs 2 > /dev/null

echo "==> hotpath bench smoke (tiny trace, JSON parses, throughput positive)"
cargo run --release -p bwsa-bench --bin hotpath -- \
    --quick --iters 1 --out "$report_tmp/hotpath.json" 2> /dev/null
cargo run --release -p bwsa-bench --bin hotpath -- --validate "$report_tmp/hotpath.json"

echo "==> server smoke (daemon up, healthy + poisoned request, clean drain)"
sock="$report_tmp/bwsa.sock"
"$bwsa" generate compress --scale 0.01 -o "$report_tmp/smoke.bwst" > /dev/null
"$bwsa" serve "$sock" &
serve_pid=$!
for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.05; done
[ -S "$sock" ] || { echo "daemon socket never appeared"; exit 1; }
"$bwsa" client "$sock" analyze "$report_tmp/smoke.bwst" --tenant smoke > /dev/null
# A windowed subscription streams summaries, then the whole-trace answer.
"$bwsa" client "$sock" subscribe "$report_tmp/smoke.bwst" --tenant smoke \
    --window 200 > "$report_tmp/subscribe.out"
grep -q '"index"' "$report_tmp/subscribe.out"
# A served RunReport must validate against this build's golden schema.
"$bwsa" client "$sock" report "$report_tmp/smoke.bwst" --tenant smoke \
    > "$report_tmp/served-report.json"
"$bwsa" validate-report "$report_tmp/served-report.json"
# A served corpus batch answers a fleet summary that validates
# against this build's golden schema.
"$bwsa" client "$sock" corpus "$corpus_dir/corpus.toml" --tenant smoke \
    --jobs 2 > "$report_tmp/served-fleet.json"
"$bwsa" validate-fleet "$report_tmp/served-fleet.json"
# A poisoned payload (valid magic, garbage body) must be a typed
# refusal (exit 1) answered by the daemon — which must survive it.
printf 'BWSS\377\377\377\377 this is not a stream' > "$report_tmp/poison.bwss"
if "$bwsa" client "$sock" analyze "$report_tmp/poison.bwss" \
    > /dev/null 2> "$report_tmp/poison.err"; then
    echo "poisoned request unexpectedly succeeded"; exit 1
else
    rc=$?
    [ "$rc" -eq 1 ] || { echo "poisoned request: expected exit 1, got $rc"; exit 1; }
fi
grep -q "server refused" "$report_tmp/poison.err"
"$bwsa" client "$sock" ping > /dev/null
"$bwsa" client "$sock" status > /dev/null
"$bwsa" client "$sock" shutdown > /dev/null
wait "$serve_pid" || { echo "daemon did not exit 0 on drain"; exit 1; }
[ ! -e "$sock" ] || { echo "socket file left behind after drain"; exit 1; }

echo "==> server bench smoke (throughput + overload phases, schema validates)"
cargo run --release -p bwsa-bench --bin server_bench -- \
    --quick --clients 2 --requests 3 --out "$report_tmp/server.json" 2> /dev/null
cargo run --release -p bwsa-bench --bin server_bench -- --validate "$report_tmp/server.json"

echo "==> corpus bench smoke (BWSS3 cold ingest, cross-format identity, schema validates)"
cargo run --release -p bwsa-bench --bin corpus_bench -- \
    --quick --jobs 2 --out "$report_tmp/corpus.json" 2> /dev/null
cargo run --release -p bwsa-bench --bin corpus_bench -- --validate "$report_tmp/corpus.json"

echo "==> all checks passed"
