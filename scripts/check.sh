#!/usr/bin/env bash
# Offline CI gate: everything a merge must pass, no network required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> parallel/serial equivalence + golden fixtures"
cargo test -q --test parallel_prop -p bwsa-core
cargo test -q --test golden_regression
cargo test -q --test cli_jobs

echo "==> bench smoke (single iteration, parallel sweep)"
cargo run --release -p bwsa-bench --bin experiments_all -- --quick --bench compress --jobs 2 > /dev/null

echo "==> all checks passed"
