#!/usr/bin/env bash
# Offline CI gate: everything a merge must pass, no network required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy: no unwrap on library fallible paths"
cargo clippy -p bwsa-resilience -p bwsa-trace -p bwsa-graph -p bwsa-predictor \
    -p bwsa-workload -p bwsa-obs -p bwsa-core --lib \
    -- -D warnings -D clippy::unwrap_used

echo "==> parallel/serial equivalence + golden fixtures"
cargo test -q --test parallel_prop -p bwsa-core
cargo test -q --test golden_regression
cargo test -q --test cli_jobs

echo "==> hot-path engine equivalence (ring vs naive oracle, flat table vs HashMap)"
cargo test -q --test hotpath_prop -p bwsa-core
cargo test -q --test prop -p bwsa-graph

echo "==> observability: instrumented == uninstrumented + report schema"
cargo test -q --test observed_equivalence -p bwsa-core
cargo test -q --test run_report

echo "==> chaos: every failpoint site contained, fuzzed decoders never panic"
cargo test -q --test chaos
cargo test -q --test stream_prop -p bwsa-trace
cargo test -q --test prop -p bwsa-workload

echo "==> run report smoke (--report json validates against the golden schema)"
report_tmp="$(mktemp -d)"
trap 'rm -rf "$report_tmp"' EXIT
bwsa="target/release/bwsa"
"$bwsa" generate pgp --scale 0.01 -o "$report_tmp/pgp.bwst" > /dev/null
"$bwsa" analyze "$report_tmp/pgp.bwst" --report json --metrics "$report_tmp/analyze.json" > /dev/null
"$bwsa" validate-report "$report_tmp/analyze.json"
"$bwsa" simulate "$report_tmp/pgp.bwst" --predictor pag --report json \
    --metrics "$report_tmp/simulate.json" > /dev/null
"$bwsa" validate-report "$report_tmp/simulate.json"

echo "==> bench smoke (single iteration, parallel sweep)"
cargo run --release -p bwsa-bench --bin experiments_all -- --quick --bench compress --jobs 2 > /dev/null

echo "==> hotpath bench smoke (tiny trace, JSON parses, throughput positive)"
cargo run --release -p bwsa-bench --bin hotpath -- \
    --quick --iters 1 --out "$report_tmp/hotpath.json" 2> /dev/null
cargo run --release -p bwsa-bench --bin hotpath -- --validate "$report_tmp/hotpath.json"

echo "==> all checks passed"
