#!/usr/bin/env bash
# Regenerates BENCH_hotpath.json: the hot-path wall-time benchmark over
# pinned-seed synthetic workloads at three trace sizes, flat engines vs
# the frozen legacy replicas. Always a release build — the hotpath binary
# itself refuses to write a report from a debug build.
#
# Usage: scripts/bench.sh [--quick] [--iters N]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bwsa-bench --bin hotpath
target/release/hotpath --out BENCH_hotpath.json "$@"
target/release/hotpath --validate BENCH_hotpath.json
