#!/usr/bin/env bash
# Regenerates the checked-in benchmark reports:
#
#   BENCH_hotpath.json — hot-path wall-time over pinned-seed synthetic
#       workloads at three trace sizes, flat engines vs frozen legacy
#       replicas.
#   BENCH_server.json  — daemon throughput (req/sec, p50/p99 latency)
#       and deterministic overload shedding with retry-after recovery.
#   BENCH_corpus.json  — corpus batch analytics: BWSS2-vs-BWSS3 cold
#       ingest (mmap and buffered), cross-format result identity,
#       end-to-end batch throughput serial vs fanned (summaries
#       byte-identical), and the isolated fleet-fold wall time.
#
# Always a release build — both binaries refuse to write a report from a
# debug build. Each report is validated right after it is written.
#
# Usage: scripts/bench.sh [--quick] [--iters N]
set -euo pipefail
cd "$(dirname "$0")/.."

# server_bench and corpus_bench only understand --quick; hotpath takes
# everything.
server_quick=""
for arg in "$@"; do
    [ "$arg" = "--quick" ] && server_quick="--quick"
done

cargo build --release -p bwsa-bench --bin hotpath --bin server_bench --bin corpus_bench
target/release/hotpath --out BENCH_hotpath.json "$@"
target/release/hotpath --validate BENCH_hotpath.json
target/release/server_bench --out BENCH_server.json $server_quick
target/release/server_bench --validate BENCH_server.json
target/release/corpus_bench --out BENCH_corpus.json $server_quick
target/release/corpus_bench --validate BENCH_corpus.json
