//! Fast tier-1 variant of `shape_full_scale`: the same paper-shape
//! assertions on 5%-scale workloads, running in seconds instead of
//! minutes, with the analysis on the parallel path (2 workers) so every
//! default test run exercises sharded execution end to end.
//!
//! The full-scale versions stay `#[ignore]`d in `shape_full_scale.rs`;
//! the bands here were calibrated on the scaled traces (which have
//! proportionally scaled conflict thresholds and execution filters, per
//! the bench harness convention).

use bwsa::core::analyze_parallel_observed;
use bwsa::prelude::*;
use bwsa::trace::profile::FrequencyFilter;
use std::num::NonZeroUsize;

const SCALE: f64 = 0.05;

fn quick_analysis(bench: Benchmark) -> (bwsa::trace::Trace, bwsa::core::pipeline::Analysis) {
    let raw = bench.generate_scaled(InputSet::A, SCALE);
    // Scale the full-run MinExecutions(20) filter and threshold 100 the
    // way the bench harness does (floor 2 for both).
    let min_exec = ((20.0 * SCALE).round() as u64).max(2);
    let threshold = ((100.0 * SCALE).round() as u64).max(2);
    let (trace, _) = FrequencyFilter::MinExecutions(min_exec).filter_trace(&raw);
    let pipeline = AnalysisPipeline {
        conflict: ConflictConfig::with_threshold(threshold).unwrap(),
        ..AnalysisPipeline::new()
    };
    let cfg = ParallelConfig {
        jobs: NonZeroUsize::new(2).unwrap(),
        shards: None,
    };
    let analysis = analyze_parallel_observed(&pipeline, &trace, &cfg, &Obs::noop());
    // The parallel path must agree with the serial one bit for bit.
    assert_eq!(
        analysis,
        pipeline.run_observed(&trace, &Obs::noop()),
        "parallel != serial"
    );
    (trace, analysis)
}

#[test]
fn li_quick_scale_reproduces_paper_shapes() {
    let (trace, analysis) = quick_analysis(Benchmark::Li);
    let cfg = AllocationConfig::default();

    // Table 2 shape: execution-weighted working set well below the static
    // population (calibrated: avg dynamic ≈ 173 of 352 static).
    let report = &analysis.working_sets.report;
    assert!(
        report.avg_dynamic_size > 100.0 && report.avg_dynamic_size < 250.0,
        "avg dynamic {}",
        report.avg_dynamic_size
    );
    assert!(report.avg_dynamic_size < trace.static_branch_count() as f64 / 1.5);

    // Tables 3–4 shape: far fewer than 1024 entries; classification
    // shrinks the requirement (calibrated: 157 plain, 92 classified).
    let plain = analysis
        .required_size(Classified(false), &trace, 1024, &cfg)
        .unwrap();
    let classified = analysis
        .required_size(Classified(true), &trace, 1024, &cfg)
        .unwrap();
    assert!(plain.size < 400, "plain {}", plain.size);
    assert!(
        classified.size < plain.size,
        "{} vs {}",
        classified.size,
        plain.size
    );

    // Figure 4 shape: allocation recovers a solid fraction of the
    // interference loss (calibrated: ~10% relative gain, allocated within
    // a whisker of interference-free).
    let allocation = analysis.allocation(Classified(true), 1024, &cfg).unwrap();
    let conventional = simulate(&mut Pag::paper_baseline(), &trace).misprediction_rate();
    let allocated = simulate(
        &mut Pag::paper_with_indexer(BhtIndexer::Allocated(allocation.index)),
        &trace,
    )
    .misprediction_rate();
    let free = simulate(&mut Pag::interference_free(), &trace).misprediction_rate();
    let gain = (conventional - allocated) / conventional;
    assert!(gain > 0.05, "relative gain {gain}");
    assert!(
        allocated <= free * 1.10,
        "allocated {allocated} vs free {free}"
    );
}

#[test]
fn compress_quick_scale_matches_paper_table2_sizes() {
    let (_, analysis) = quick_analysis(Benchmark::Compress);
    let report = &analysis.working_sets.report;
    // Paper (full scale): avg static 41, avg dynamic 25. The scaled run
    // lands in the same neighbourhood (calibrated: avg dynamic ≈ 40).
    assert!(
        (20.0..=60.0).contains(&report.avg_dynamic_size),
        "avg dynamic {}",
        report.avg_dynamic_size
    );
    assert!(report.max_size < 100, "max {}", report.max_size);
}
