//! Integration: trace serialisation round-trips preserve every analysis
//! artifact, so traces can be generated once and analysed elsewhere.

use bwsa::core::Session;
use bwsa::trace::io as trace_io;
use bwsa::workload::suite::{Benchmark, InputSet};

#[test]
fn binary_roundtrip_preserves_analysis_results() {
    let trace = Benchmark::Ijpeg.generate_scaled(InputSet::A, 0.05);
    let bytes = trace_io::encode_binary(&trace);
    let back = trace_io::decode_binary(&bytes).expect("roundtrip decodes");
    assert_eq!(back, trace);

    let original_session = Session::new(&trace);
    let original = original_session.run().unwrap();
    let reloaded_session = Session::new(&back);
    let reloaded = reloaded_session.run().unwrap();
    assert_eq!(original.working_sets, reloaded.working_sets);
    assert_eq!(original.profile, reloaded.profile);
}

#[test]
fn binary_format_is_compact() {
    let trace = Benchmark::Compress.generate_scaled(InputSet::A, 0.05);
    let bytes = trace_io::encode_binary(&trace);
    // 17 bytes/record naive; delta varints should stay under 6.
    assert!(
        bytes.len() < trace.len() * 6,
        "{} bytes for {} records",
        bytes.len(),
        trace.len()
    );
}

#[test]
fn text_roundtrip_through_io_traits() {
    let trace = Benchmark::Pgp.generate_scaled(InputSet::A, 0.01);
    let mut buf = Vec::new();
    trace_io::write_text(&trace, &mut buf).expect("write");
    let back = trace_io::read_text(&buf[..]).expect("read");
    assert_eq!(back.records(), trace.records());
    assert_eq!(back.meta().name, trace.meta().name);
}
