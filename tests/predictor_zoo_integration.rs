//! Integration: the predictor zoo on a realistic workload — ordering
//! invariants that must hold regardless of tuning.

use bwsa::predictor::{
    Agree, BiMode, Bimodal, Gag, Gap, Gselect, Gshare, Hybrid, Pap, StaticPredictor,
};
use bwsa::prelude::*;

fn trace() -> bwsa::trace::Trace {
    Benchmark::M88ksim.generate_scaled(InputSet::A, 0.05)
}

#[test]
fn every_predictor_produces_sane_rates() {
    let trace = trace();
    let mut zoo: Vec<Box<dyn BranchPredictor>> = vec![
        Box::new(StaticPredictor::always_taken()),
        Box::new(StaticPredictor::always_not_taken()),
        Box::new(StaticPredictor::from_profile(&trace)),
        Box::new(Bimodal::new(1024)),
        Box::new(Gag::new(12)),
        Box::new(Gap::new(10, 64)),
        Box::new(Gselect::new(6, 6)),
        Box::new(Gshare::new(12)),
        Box::new(BiMode::new(12, 1024)),
        Box::new(Pag::paper_baseline()),
        Box::new(Pag::interference_free()),
        Box::new(Pap::new(BhtIndexer::pc_modulo(128), 10)),
        Box::new(Hybrid::new(Gshare::new(12), Bimodal::new(1024), 1024)),
        Box::new(Agree::new(12, 1024)),
    ];
    for p in &mut zoo {
        let r = simulate(&mut **p, &trace);
        assert_eq!(r.total, trace.len() as u64, "{}", r.predictor);
        let rate = r.misprediction_rate();
        assert!((0.0..=1.0).contains(&rate), "{}: {rate}", r.predictor);
        assert!(!r.predictor.is_empty());
    }
}

#[test]
fn dynamic_predictors_beat_naive_statics() {
    let trace = trace();
    let taken = simulate(&mut StaticPredictor::always_taken(), &trace).misprediction_rate();
    let not_taken = simulate(&mut StaticPredictor::always_not_taken(), &trace).misprediction_rate();
    let naive_floor = taken.min(not_taken);
    for (name, rate) in [
        (
            "bimodal",
            simulate(&mut Bimodal::new(1024), &trace).misprediction_rate(),
        ),
        (
            "pag",
            simulate(&mut Pag::paper_baseline(), &trace).misprediction_rate(),
        ),
        (
            "hybrid",
            simulate(
                &mut Hybrid::new(Gshare::new(12), Bimodal::new(1024), 1024),
                &trace,
            )
            .misprediction_rate(),
        ),
    ] {
        assert!(
            rate < naive_floor,
            "{name} ({rate}) should beat naive statics ({naive_floor})"
        );
    }
}

#[test]
fn interference_free_pag_is_at_least_as_good_as_conventional() {
    let trace = trace();
    let conventional = simulate(&mut Pag::paper_baseline(), &trace).misprediction_rate();
    let free = simulate(&mut Pag::interference_free(), &trace).misprediction_rate();
    assert!(
        free <= conventional + 0.002,
        "free {free} vs conventional {conventional}"
    );
}

#[test]
fn profile_static_beats_both_fixed_directions_on_training_input() {
    let trace = trace();
    let profiled = simulate(&mut StaticPredictor::from_profile(&trace), &trace).mispredictions;
    let taken = simulate(&mut StaticPredictor::always_taken(), &trace).mispredictions;
    let not_taken = simulate(&mut StaticPredictor::always_not_taken(), &trace).mispredictions;
    assert!(profiled <= taken.min(not_taken));
}
