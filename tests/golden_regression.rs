//! Golden regression fixtures: small deterministic workload traces whose
//! Table 2 / Table 3-shaped analysis output is snapshotted under
//! `tests/golden/`. Any change to the interleave engine, thresholding,
//! working-set extraction, classification, or allocation that alters the
//! numbers shows up as a readable text diff.
//!
//! The analysis runs through the *parallel* pipeline (2 workers, 5
//! shards), so this also pins the parallel path to the snapshotted serial
//! numbers. To regenerate after an intentional change:
//!
//! ```text
//! BWSA_UPDATE_GOLDEN=1 cargo test --test golden_regression
//! ```

use bwsa::core::analyze_parallel_observed;
use bwsa::prelude::*;
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::path::PathBuf;

const SCALE: f64 = 0.01;
const FIXTURES: &[(Benchmark, InputSet)] = &[
    (Benchmark::Li, InputSet::A),
    (Benchmark::Compress, InputSet::A),
    (Benchmark::Gcc, InputSet::B),
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// The Table 2 / Table 3-shaped summary of one benchmark run, as stable
/// text. Only integer counts and 2-decimal fixed-point values, so the
/// snapshot is byte-reproducible.
fn snapshot(bench: Benchmark, set: InputSet) -> String {
    let trace = bench.generate_scaled(set, SCALE);
    // Scale the paper's threshold of 100 like the bench harness does, so
    // the scaled-down run thresholds proportionally.
    let threshold = ((100.0 * SCALE).round() as u64).max(2);
    let pipeline = AnalysisPipeline {
        conflict: ConflictConfig::with_threshold(threshold).unwrap(),
        ..AnalysisPipeline::new()
    };
    let cfg = ParallelConfig {
        jobs: NonZeroUsize::new(2).unwrap(),
        shards: NonZeroUsize::new(5),
    };
    let analysis = analyze_parallel_observed(&pipeline, &trace, &cfg, &Obs::noop());

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fixture {}_{} scale={}",
        bench.name(),
        set.suffix(),
        SCALE
    );
    let _ = writeln!(
        out,
        "trace: records={} static={} threshold={}",
        trace.len(),
        trace.static_branch_count(),
        threshold
    );
    let r = &analysis.working_sets.report;
    let _ = writeln!(
        out,
        "table2: sets={} avg_static={:.2} avg_dynamic={:.2} max={}",
        r.total_sets, r.avg_static_size, r.avg_dynamic_size, r.max_size
    );
    let (t, n, m) = analysis.classification.counts();
    let _ = writeln!(out, "classes: taken={t} not_taken={n} mixed={m}");
    let _ = writeln!(
        out,
        "conflict: kept_edges={} raw_edges={} total_weight={}",
        analysis.conflict.graph.edge_count(),
        analysis.conflict.raw_edge_count,
        analysis.conflict.graph.total_weight()
    );
    let alloc_cfg = AllocationConfig::default();
    let plain = analysis
        .required_size(Classified(false), &trace, 1024, &alloc_cfg)
        .unwrap();
    let classified = analysis
        .required_size(Classified(true), &trace, 1024, &alloc_cfg)
        .unwrap();
    let _ = writeln!(
        out,
        "table3: required_plain={} required_classified={}",
        plain.size, classified.size
    );
    // The ten heaviest thresholded edges, deterministically ordered:
    // weight descending, then endpoints ascending.
    let mut edges: Vec<(u32, u32, u64)> = analysis.conflict.graph.iter_edges().collect();
    edges.sort_by_key(|&(a, b, w)| (std::cmp::Reverse(w), a, b));
    let _ = writeln!(out, "top_edges:");
    for (a, b, w) in edges.into_iter().take(10) {
        let _ = writeln!(out, "  {a}-{b} {w}");
    }
    out
}

#[test]
fn golden_fixtures_match() {
    let update = std::env::var_os("BWSA_UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    let mut failures = Vec::new();
    for &(bench, set) in FIXTURES {
        let name = format!("{}_{}.txt", bench.name(), set.suffix());
        let path = dir.join(&name);
        let actual = snapshot(bench, set);
        if update {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read golden fixture {}: {e}", path.display()));
        if actual != expected {
            failures.push(format!(
                "golden mismatch for {name}:\n--- expected\n{expected}\n--- actual\n{actual}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{}\n(if the change is intentional, regenerate with \
         BWSA_UPDATE_GOLDEN=1 cargo test --test golden_regression)",
        failures.join("\n")
    );
}

#[test]
fn snapshots_are_deterministic_across_runs() {
    let (bench, set) = FIXTURES[0];
    assert_eq!(snapshot(bench, set), snapshot(bench, set));
}
