//! Golden schema test for the versioned [`RunReport`] JSON document.
//!
//! The report is a public, machine-readable interface: downstream tooling
//! parses `bwsa analyze --report json` output, so its *shape* (which
//! paths exist and what type each holds) must not drift silently. This
//! test pins the wildcarded shape of a canonical report — one that
//! exercises every field and every JSON value type a subcommand can put
//! in its `config` echo — against `tests/golden/run_report.schema`, the
//! same fixture `bwsa validate-report` checks emitted reports against.
//!
//! Changing the report's shape intentionally means bumping
//! [`RUN_REPORT_VERSION`] and regenerating:
//!
//! ```text
//! BWSA_UPDATE_GOLDEN=1 cargo test --test run_report
//! ```

use bwsa::obs::json::Json;
use bwsa::obs::report::schema_shape;
use bwsa::obs::{
    DowngradeReport, Obs, ResilienceReport, RunReport, WindowsReport, RUN_REPORT_VERSION,
};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("run_report.schema")
}

/// A report exercising every schema element: stages, counters, digests,
/// peak RSS, and a `config` echo holding each JSON value type any
/// subcommand uses (number, string, null, bool).
fn canonical_report() -> RunReport {
    let obs = Obs::recording();
    obs.span("ingest").finish();
    obs.span("profile").finish();
    obs.add("trace.records_read", 100);
    obs.add("core.interleave_pairs", 12);
    let metrics = obs.snapshot().unwrap();
    let config = Json::object([
        ("conflict_threshold", Json::UInt(100)),
        ("taken_threshold", Json::Float(0.99)),
        ("execution", Json::from("serial")),
        ("shards", Json::Null),
        ("checkpointing", Json::from(false)),
    ]);
    let mut report = RunReport::new("analyze", "golden", 100, 7, config, &metrics);
    // Pin the platform-dependent field so the fixture is identical
    // everywhere.
    report.peak_rss_bytes = Some(1 << 20);
    report.push_digest("classification", "crc32:deadbeef");
    // A populated resilience section, so the downgrade/fault array item
    // shapes are pinned too (v2).
    report.set_resilience(ResilienceReport {
        supervised: true,
        attempts: 3,
        retries: 1,
        downgrades: vec![DowngradeReport {
            from: "parallel".into(),
            to: "serial".into(),
            reason: "injected fault at 'core.shard_detect': golden".into(),
        }],
        faults: vec!["injected fault at 'core.shard_detect': golden".into()],
    });
    // A populated windows section (v3): the windowed-analysis summary is
    // always present, enabled or not, with a fixed shape.
    report.set_windows(WindowsReport {
        enabled: true,
        interval: 50,
        unit: "branches".into(),
        count: 2,
        records: 100,
        recolors: 1,
        mean_stability: 0.5,
        phase_changes: 1,
    });
    report
}

#[test]
fn run_report_schema_matches_golden_fixture() {
    let shape = schema_shape(&canonical_report().to_json());
    let path = golden_path();
    if std::env::var_os("BWSA_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &shape).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        shape, golden,
        "RunReport JSON shape changed without a schema update.\n\
         If intentional: bump RUN_REPORT_VERSION in crates/obs/src/report.rs\n\
         and regenerate with BWSA_UPDATE_GOLDEN=1 cargo test --test run_report"
    );
}

#[test]
fn schema_version_is_pinned() {
    // Bumping the version is deliberate: it invalidates old reports for
    // `bwsa validate-report` and requires regenerating the fixture.
    // v2 added the always-present `resilience` section; v3 added the
    // always-present `windows` section (online windowed analysis).
    assert_eq!(RUN_REPORT_VERSION, 3);
}

#[test]
fn windows_section_has_the_v3_shape() {
    let doc = Json::parse(&canonical_report().to_json_string()).unwrap();
    let windows = doc.get("windows").expect("v3 windows object");
    assert_eq!(windows.get("enabled"), Some(&Json::Bool(true)));
    assert_eq!(windows.get("interval").and_then(Json::as_u64), Some(50));
    assert_eq!(windows.get("unit").and_then(Json::as_str), Some("branches"));
    assert_eq!(windows.get("count").and_then(Json::as_u64), Some(2));
    assert_eq!(windows.get("records").and_then(Json::as_u64), Some(100));
    assert_eq!(windows.get("recolors").and_then(Json::as_u64), Some(1));
    assert_eq!(windows.get("mean_stability"), Some(&Json::Float(0.5)));
    assert_eq!(windows.get("phase_changes").and_then(Json::as_u64), Some(1));
    // Disabled runs carry the same shape, so validate-report's golden
    // check is independent of whether --window was passed.
    let disabled = RunReport::new("analyze", "t", 0, 0, Json::Null, &Default::default());
    let keys = |r: &Json| r.get("windows").map(schema_shape).expect("windows object");
    assert_eq!(
        keys(&doc),
        keys(&Json::parse(&disabled.to_json_string()).unwrap())
    );
}

#[test]
fn canonical_report_roundtrips_through_json() {
    let report = canonical_report();
    let doc = Json::parse(&report.to_json_string()).unwrap();
    assert_eq!(
        doc.get("run_report_version").and_then(Json::as_u64),
        Some(RUN_REPORT_VERSION)
    );
    assert_eq!(
        doc.get("trace")
            .and_then(|t| t.get("records"))
            .and_then(Json::as_u64),
        Some(100)
    );
    // A parsed emitted report has exactly the pinned shape.
    assert_eq!(
        schema_shape(&doc),
        schema_shape(&report.to_json()),
        "serialisation must not change the shape"
    );
}
