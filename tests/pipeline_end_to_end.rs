//! End-to-end integration: workload generation → working set analysis →
//! branch allocation → predictor simulation, across crate boundaries.

use bwsa::core::allocation::AllocationConfig;
use bwsa::core::conflict::ConflictConfig;
use bwsa::core::pipeline::AnalysisPipeline;
use bwsa::core::Classified;
use bwsa::obs::Obs;
use bwsa::predictor::{simulate, BhtIndexer, Pag};
use bwsa::workload::suite::{Benchmark, InputSet};

const SCALE: f64 = 0.08;

fn pipeline() -> AnalysisPipeline {
    AnalysisPipeline {
        conflict: ConflictConfig::with_threshold(8).unwrap(),
        ..AnalysisPipeline::new()
    }
}

#[test]
fn working_sets_are_small_relative_to_static_population() {
    for bench in [Benchmark::Compress, Benchmark::Pgp, Benchmark::Perl] {
        let trace = bench.generate_scaled(InputSet::A, SCALE);
        let analysis = pipeline().run_observed(&trace, &Obs::noop());
        let report = &analysis.working_sets.report;
        assert!(report.total_sets >= 1, "{bench}: no working sets");
        assert!(
            report.avg_static_size < trace.static_branch_count() as f64 * 0.6,
            "{bench}: avg set {} vs {} static branches",
            report.avg_static_size,
            trace.static_branch_count()
        );
    }
}

#[test]
fn allocation_conflict_mass_beats_conventional_at_modest_sizes() {
    let trace = Benchmark::Compress.generate_scaled(InputSet::A, SCALE);
    let analysis = pipeline().run_observed(&trace, &Obs::noop());
    let r = analysis
        .required_size(
            Classified(false),
            &trace,
            1024,
            &AllocationConfig::default(),
        )
        .unwrap();
    assert!(
        r.size < 1024,
        "allocation should need far fewer than 1024 entries, got {}",
        r.size
    );
    assert!(r.achieved_mass <= r.target_mass);
}

#[test]
fn classification_never_hurts_required_size() {
    for bench in [Benchmark::Compress, Benchmark::Pgp] {
        let trace = bench.generate_scaled(InputSet::A, SCALE);
        let analysis = pipeline().run_observed(&trace, &Obs::noop());
        let cfg = AllocationConfig::default();
        let plain = analysis
            .required_size(Classified(false), &trace, 1024, &cfg)
            .unwrap();
        let classified = analysis
            .required_size(Classified(true), &trace, 1024, &cfg)
            .unwrap();
        assert!(
            classified.size <= plain.size.max(3),
            "{bench}: classified {} vs plain {}",
            classified.size,
            plain.size
        );
    }
}

#[test]
fn allocated_pag_tracks_interference_free() {
    // The paper's Figure 3/4 headline, at test scale: allocation with the
    // full 1024 entries lands within a small margin of the
    // interference-free PAg, and does not lose to the conventional PAg.
    let trace = Benchmark::M88ksim.generate_scaled(InputSet::A, SCALE);
    let analysis = pipeline().run_observed(&trace, &Obs::noop());
    let allocation = analysis
        .allocation(Classified(false), 1024, &AllocationConfig::default())
        .unwrap();
    let conventional = simulate(&mut Pag::paper_baseline(), &trace).misprediction_rate();
    let allocated = simulate(
        &mut Pag::paper_with_indexer(BhtIndexer::Allocated(allocation.index)),
        &trace,
    )
    .misprediction_rate();
    let free = simulate(&mut Pag::interference_free(), &trace).misprediction_rate();
    assert!(
        allocated <= conventional + 0.005,
        "allocated {allocated} should not lose to conventional {conventional}"
    );
    assert!(
        (allocated - free).abs() < 0.02,
        "allocated {allocated} should track interference-free {free}"
    );
}

#[test]
fn biased_branches_share_reserved_entries_without_penalty() {
    let trace = Benchmark::Pgp.generate_scaled(InputSet::A, SCALE);
    let analysis = pipeline().run_observed(&trace, &Obs::noop());
    let cfg = AllocationConfig::default();
    let plain = analysis.allocation(Classified(false), 256, &cfg).unwrap();
    let classified = analysis.allocation(Classified(true), 256, &cfg).unwrap();
    let rate = |index: bwsa::predictor::AllocatedIndex| {
        simulate(
            &mut Pag::paper_with_indexer(BhtIndexer::Allocated(index)),
            &trace,
        )
        .misprediction_rate()
    };
    let plain_rate = rate(plain.index);
    let classified_rate = rate(classified.index);
    assert!(
        (classified_rate - plain_rate).abs() < 0.02,
        "cramming biased branches into 2 entries should be nearly free: \
         classified {classified_rate} vs plain {plain_rate}"
    );
}

#[test]
fn allocation_reduces_first_level_interference_events() {
    // The mechanism behind the figures: allocation cuts the number of
    // times a branch finds someone else's history in its BHT entry.
    let trace = Benchmark::Li.generate_scaled(InputSet::A, SCALE);
    let analysis = pipeline().run_observed(&trace, &Obs::noop());
    let allocation = analysis
        .allocation(Classified(false), 1024, &AllocationConfig::default())
        .unwrap();

    let mut conventional = Pag::paper_baseline();
    simulate(&mut conventional, &trace);
    let mut allocated = Pag::paper_with_indexer(BhtIndexer::Allocated(allocation.index));
    simulate(&mut allocated, &trace);
    let mut free = Pag::interference_free();
    simulate(&mut free, &trace);

    assert_eq!(free.interference_events(), 0);
    assert!(
        allocated.interference_events() < conventional.interference_events() / 2,
        "allocation {} vs conventional {}",
        allocated.interference_events(),
        conventional.interference_events()
    );
}

#[test]
fn analysis_is_deterministic_end_to_end() {
    let a = {
        let trace = Benchmark::Perl.generate_scaled(InputSet::A, SCALE);
        pipeline()
            .run_observed(&trace, &Obs::noop())
            .working_sets
            .report
    };
    let b = {
        let trace = Benchmark::Perl.generate_scaled(InputSet::A, SCALE);
        pipeline()
            .run_observed(&trace, &Obs::noop())
            .working_sets
            .report
    };
    assert_eq!(a, b);
}
