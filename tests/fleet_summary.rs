//! Golden schema test for the versioned [`FleetSummary`] JSON document.
//!
//! Like the run report, the fleet summary is a public machine-readable
//! interface: CI dashboards parse `bwsa corpus --report json` output, so
//! its shape must not drift silently. This test pins the shape of a
//! canonical summary — one that exercises every status, a failed entry's
//! error string, multiple workload classes, and a multi-bucket
//! histogram — against `tests/golden/fleet_summary.schema`, the same
//! fixture `bwsa validate-fleet` checks emitted summaries against.
//!
//! Changing the summary's shape intentionally means bumping
//! [`FLEET_SUMMARY_VERSION`] and regenerating:
//!
//! ```text
//! BWSA_UPDATE_GOLDEN=1 cargo test --test fleet_summary
//! ```

use bwsa::corpus::FLEET_SUMMARY_VERSION;
use bwsa::corpus::{EntryRecord, EntryStatus, FleetAccumulator, FleetSummary};
use bwsa::obs::json::Json;
use bwsa::obs::report::schema_shape;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("fleet_summary.schema")
}

fn entry(key: &str, class: &str, status: EntryStatus, max_set: u64) -> EntryRecord {
    EntryRecord {
        key: key.to_owned(),
        class: class.to_owned(),
        status,
        error: None,
        records: 5_000,
        chunks_dropped: u64::from(status == EntryStatus::Degraded),
        retries: 1,
        downgrades: u64::from(status == EntryStatus::Degraded),
        total_sets: 6,
        max_set,
        avg_dynamic_size: 3.25,
        avg_static_size: 2.5,
        required_size: 128,
        baseline: 1024,
    }
}

/// A summary exercising every schema element: all three entry statuses
/// (so both the null and string shapes of `error` are pinned), two
/// workload classes, and max-set sizes spread across histogram buckets.
fn canonical_summary() -> FleetSummary {
    let acc: FleetAccumulator = vec![
        entry("compress_a.bwss", "integer", EntryStatus::Ok, 3),
        entry("pgp_a.bwss", "crypto", EntryStatus::Degraded, 9),
        entry("li_a.bwss", "integer", EntryStatus::Ok, 17),
        EntryRecord::failed("broken.bwss", "integer", "cannot read: bad checksum"),
    ]
    .into_iter()
    .collect();
    acc.finish("golden")
}

#[test]
fn fleet_summary_schema_matches_golden_fixture() {
    let shape = schema_shape(&canonical_summary().to_json());
    let path = golden_path();
    if std::env::var_os("BWSA_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &shape).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        shape, golden,
        "FleetSummary JSON shape changed without a schema update.\n\
         If intentional: bump FLEET_SUMMARY_VERSION in crates/corpus/src/fleet.rs\n\
         and regenerate with BWSA_UPDATE_GOLDEN=1 cargo test --test fleet_summary"
    );
}

#[test]
fn schema_version_is_pinned() {
    // Bumping the version is deliberate: it invalidates old summaries
    // for `bwsa validate-fleet` and requires regenerating the fixture.
    assert_eq!(FLEET_SUMMARY_VERSION, 1);
}

#[test]
fn canonical_summary_roundtrips_through_json() {
    let summary = canonical_summary();
    let doc = Json::parse(&summary.to_json().to_pretty_string()).unwrap();
    assert_eq!(
        doc.get("fleet_summary_version").and_then(Json::as_u64),
        Some(FLEET_SUMMARY_VERSION)
    );
    assert_eq!(
        doc.get("corpus")
            .and_then(|c| c.get("entries"))
            .and_then(Json::as_u64),
        Some(4)
    );
    assert_eq!(
        doc.get("resilience")
            .and_then(|r| r.get("failed"))
            .and_then(Json::as_u64),
        Some(1)
    );
    // A parsed emitted summary has exactly the pinned shape.
    assert_eq!(
        schema_shape(&doc),
        schema_shape(&summary.to_json()),
        "serialisation must not change the shape"
    );
}

#[test]
fn real_corpus_summary_validates_against_the_fixture() {
    // The shape of a summary produced by an actual (all-ok, single
    // class) run must be a subset of the canonical shape — this is the
    // exact check `bwsa validate-fleet` performs on emitted files.
    let acc: FleetAccumulator = vec![
        entry("a.bwss", "integer", EntryStatus::Ok, 4),
        entry("b.bwss", "integer", EntryStatus::Ok, 8),
    ]
    .into_iter()
    .collect();
    let shape = schema_shape(&acc.finish("subset").to_json());
    let golden = std::fs::read_to_string(golden_path()).unwrap();
    let known: std::collections::BTreeSet<&str> = golden.lines().collect();
    for line in shape.lines().filter(|l| !l.is_empty()) {
        assert!(
            known.contains(line),
            "emitted summary path {line:?} missing from the golden schema"
        );
    }
}
