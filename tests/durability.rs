//! Integration: durable ingestion end to end — corrupted streams salvage
//! to the same analysis minus the damaged chunk, interrupted runs resume
//! bit-identically, and the `bwsa` binary honours its exit-code contract.

use bwsa::core::StreamingAnalysis;
use bwsa::predictor::{simulate_resumable, Gshare, SimCheckpoint};
use bwsa::prelude::*;
use bwsa::trace::stream::{frame_spans, RecoveryPolicy, StreamReader, StreamWriter};
use std::path::PathBuf;
use std::process::Command;

fn stream_bytes(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = StreamWriter::new(&mut buf, &trace.meta().name).unwrap();
    for r in trace.records() {
        w.push(*r).unwrap();
    }
    w.finish(trace.meta().total_instructions).unwrap();
    buf
}

fn salvage_records(bytes: &[u8]) -> Vec<BranchRecord> {
    StreamReader::with_recovery(bytes, RecoveryPolicy::Salvage)
        .unwrap()
        .filter_map(|r| r.ok())
        .collect()
}

/// Corrupting one chunk and salvaging yields exactly the analysis of the
/// trace with that chunk's records removed — damage stays local.
#[test]
fn salvaged_analysis_equals_clean_analysis_minus_the_dropped_chunk() {
    let trace = Benchmark::Compress.generate_scaled(InputSet::A, 0.05);
    let buf = stream_bytes(&trace);

    // Flip a bit in the payload of the second data chunk.
    let spans = frame_spans(&buf).unwrap();
    let victim = spans[1];
    let mut bad = buf.clone();
    bad[victim.offset + victim.len / 2] ^= 0x08;

    let recovered = salvage_records(&bad);
    assert_eq!(
        recovered.len(),
        trace.len() - victim.records as usize,
        "exactly the victim chunk is gone"
    );

    // Reference: the same records with the victim chunk excised.
    let start: usize = spans[..1].iter().map(|s| s.records as usize).sum();
    let mut expect = trace.records().to_vec();
    expect.drain(start..start + victim.records as usize);
    assert_eq!(recovered, expect);

    let pipeline = AnalysisPipeline::new();
    let mut salvaged = StreamingAnalysis::new(&trace.meta().name);
    for r in &recovered {
        salvaged.push(r);
    }
    let mut reference = StreamingAnalysis::new(&trace.meta().name);
    for r in &expect {
        reference.push(r);
    }
    let a = salvaged.finish(&pipeline);
    let b = reference.finish(&pipeline);
    assert_eq!(a.profile, b.profile);
    assert_eq!(a.working_sets, b.working_sets);
    assert_eq!(a.classification, b.classification);
}

/// A simulation checkpointed, serialised to disk bytes, and resumed in a
/// fresh process-like predictor matches the uninterrupted run exactly.
#[test]
fn interrupted_simulation_resumes_bit_identically() {
    let trace = Benchmark::Pgp.generate_scaled(InputSet::A, 0.02);
    let full = simulate(&mut Gshare::new(12), &trace);

    let mut checkpoints: Vec<Vec<u8>> = Vec::new();
    let interrupted = simulate_resumable(&mut Gshare::new(12), &trace, None, Some(1000), |ck| {
        checkpoints.push(ck.to_bytes());
        Ok(())
    })
    .unwrap();
    assert_eq!(interrupted, full);
    assert!(!checkpoints.is_empty());

    for bytes in &checkpoints {
        let ck = SimCheckpoint::from_bytes(bytes).unwrap();
        let mut fresh = Gshare::new(12);
        let resumed = simulate_resumable(&mut fresh, &trace, Some(&ck), None, |_| Ok(())).unwrap();
        assert_eq!(
            resumed, full,
            "resume from record {} diverged",
            ck.records_consumed
        );
    }
}

// ---------------------------------------------------------------------
// The real binary: exit codes, salvage warnings, checkpoint files.
// ---------------------------------------------------------------------

fn bwsa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bwsa"))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bwsa_durability_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn usage_errors_exit_2_and_runtime_errors_exit_1() {
    let out = bwsa().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    let out = bwsa()
        .args(["analyze", "/no/such/file.bwst"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    let out = bwsa()
        .args(["analyze", "x.bwss", "--checkpoint-every", "4"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "cadence without --checkpoint is misuse"
    );
}

#[test]
fn corrupted_stream_fails_strict_but_salvages_to_the_reduced_report() {
    let trace = Benchmark::Compress.generate_scaled(InputSet::A, 0.05);
    let buf = stream_bytes(&trace);
    let spans = frame_spans(&buf).unwrap();
    let victim = spans[2];
    let mut bad = buf.clone();
    bad[victim.offset + victim.len / 2] ^= 0x10;

    let bad_path = temp_path("corrupt.bwss");
    std::fs::write(&bad_path, &bad).unwrap();

    // Strict read of a damaged stream is a data error: exit 1.
    let out = bwsa().arg("analyze").arg(&bad_path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));

    // Salvage succeeds (exit 0) and warns on stderr.
    let out = bwsa()
        .args(["analyze"])
        .arg(&bad_path)
        .arg("--salvage")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning:"), "no salvage warning: {stderr}");
    assert!(stderr.contains("1 dropped"), "unexpected warning: {stderr}");

    // Its stdout equals analyzing a clean stream of the surviving records.
    let start: usize = spans[..2].iter().map(|s| s.records as usize).sum();
    let mut rest = Trace::new(trace.meta().name.clone());
    for (i, r) in trace.records().iter().enumerate() {
        if !(start..start + victim.records as usize).contains(&i) {
            rest.push(*r).unwrap();
        }
    }
    rest.meta_mut().total_instructions = trace.meta().total_instructions;
    let rest_path = temp_path("rest.bwss");
    std::fs::write(&rest_path, stream_bytes(&rest)).unwrap();
    let clean = bwsa().arg("analyze").arg(&rest_path).output().unwrap();
    assert_eq!(clean.status.code(), Some(0));
    assert!(clean.stderr.is_empty());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&clean.stdout),
        "salvaged analysis differs from the clean reduced analysis"
    );

    std::fs::remove_file(bad_path).ok();
    std::fs::remove_file(rest_path).ok();
}

#[test]
fn simulation_killed_after_a_checkpoint_resumes_to_the_same_result() {
    // Compress at 0.05 ≈ 20k records: checkpoints at each 4096-record
    // chunk boundary with --checkpoint-every 1.
    let trace = Benchmark::Compress.generate_scaled(InputSet::A, 0.05);
    let trace_path = temp_path("resume.bwss");
    std::fs::write(&trace_path, stream_bytes(&trace)).unwrap();
    let ck_path = temp_path("resume.bwck");
    std::fs::remove_file(&ck_path).ok();

    // Uninterrupted baseline.
    let baseline = bwsa()
        .args(["simulate"])
        .arg(&trace_path)
        .args(["--predictor", "gshare"])
        .output()
        .unwrap();
    assert_eq!(baseline.status.code(), Some(0));

    // A run that writes checkpoints; the file left behind is the last
    // interior checkpoint — exactly what a killed run would have.
    let out = bwsa()
        .args(["simulate"])
        .arg(&trace_path)
        .args([
            "--predictor",
            "gshare",
            "--checkpoint-every",
            "1",
            "--checkpoint",
        ])
        .arg(&ck_path)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.stdout, baseline.stdout);
    assert!(ck_path.exists(), "no checkpoint was written");

    // "Restart" from the surviving checkpoint.
    let resumed = bwsa()
        .args(["simulate"])
        .arg(&trace_path)
        .args(["--predictor", "gshare", "--resume"])
        .arg(&ck_path)
        .output()
        .unwrap();
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        resumed.stdout, baseline.stdout,
        "resumed run differs from uninterrupted run"
    );

    // Resuming with the wrong predictor is a data error, not a crash.
    let wrong = bwsa()
        .args(["simulate"])
        .arg(&trace_path)
        .args(["--predictor", "bimodal", "--resume"])
        .arg(&ck_path)
        .output()
        .unwrap();
    assert_eq!(wrong.status.code(), Some(1));

    std::fs::remove_file(trace_path).ok();
    std::fs::remove_file(ck_path).ok();
}

#[test]
fn analysis_checkpoint_resumes_to_the_same_report() {
    let trace = Benchmark::Compress.generate_scaled(InputSet::A, 0.05);
    let trace_path = temp_path("aresume.bwss");
    std::fs::write(&trace_path, stream_bytes(&trace)).unwrap();
    let ck_path = temp_path("aresume.bwck");
    std::fs::remove_file(&ck_path).ok();

    let baseline = bwsa().arg("analyze").arg(&trace_path).output().unwrap();
    assert_eq!(baseline.status.code(), Some(0));

    let out = bwsa()
        .args(["analyze"])
        .arg(&trace_path)
        .args(["--checkpoint-every", "1", "--checkpoint"])
        .arg(&ck_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(out.stdout, baseline.stdout);
    assert!(ck_path.exists(), "no analysis checkpoint was written");

    let resumed = bwsa()
        .args(["analyze"])
        .arg(&trace_path)
        .args(["--resume"])
        .arg(&ck_path)
        .output()
        .unwrap();
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        resumed.stdout, baseline.stdout,
        "resumed analysis differs from uninterrupted analysis"
    );

    std::fs::remove_file(trace_path).ok();
    std::fs::remove_file(ck_path).ok();
}

/// A checkpoint on disk survives bit rot checks: flipping a byte makes the
/// loader fall back to the rotated `.prev` ancestor with a warning, and once
/// no valid ancestor exists the resume is rejected with exit 1 rather than
/// resuming silently wrong.
#[test]
fn tampered_checkpoint_files_are_rejected_by_the_binary() {
    let trace = Benchmark::Compress.generate_scaled(InputSet::A, 0.05);
    let trace_path = temp_path("tamper.bwss");
    std::fs::write(&trace_path, stream_bytes(&trace)).unwrap();
    let ck_path = temp_path("tamper.bwck");
    std::fs::remove_file(&ck_path).ok();

    let out = bwsa()
        .args(["simulate"])
        .arg(&trace_path)
        .args([
            "--predictor",
            "gshare",
            "--checkpoint-every",
            "1",
            "--checkpoint",
        ])
        .arg(&ck_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));

    let mut bytes = std::fs::read(&ck_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&ck_path, &bytes).unwrap();

    // With the rotated ancestor still on disk, the loader warns and resumes
    // from `.prev` instead of trusting the tampered file.
    let prev_path = format!("{}.prev", ck_path.display());
    assert!(
        std::path::Path::new(&prev_path).exists(),
        "checkpoint rotation should have produced {prev_path}"
    );
    let fallback = bwsa()
        .args(["simulate"])
        .arg(&trace_path)
        .args(["--predictor", "gshare", "--resume"])
        .arg(&ck_path)
        .output()
        .unwrap();
    assert_eq!(
        fallback.status.code(),
        Some(0),
        "resume should fall back to the rotated checkpoint: {}",
        String::from_utf8_lossy(&fallback.stderr)
    );
    assert!(
        String::from_utf8_lossy(&fallback.stderr).contains(".prev"),
        "fallback must be announced on stderr"
    );

    // Remove the ancestor: now only the tampered file remains and the resume
    // must be rejected rather than silently wrong.
    std::fs::remove_file(&prev_path).unwrap();
    let resumed = bwsa()
        .args(["simulate"])
        .arg(&trace_path)
        .args(["--predictor", "gshare", "--resume"])
        .arg(&ck_path)
        .output()
        .unwrap();
    assert_eq!(resumed.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&resumed.stderr).contains("error:"));

    std::fs::remove_file(trace_path).ok();
    std::fs::remove_file(ck_path).ok();
}
