//! Exit-code contract for `bwsa corpus` and `bwsa validate-fleet`,
//! exercised against the real binary: 0 on a completed batch (even with
//! degraded entries), 1 on runtime failures, 2 on manifest/usage errors
//! — plus the bit-identity contract between serial and parallel runs.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bwsa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bwsa"))
        .args(args)
        .output()
        .expect("bwsa binary runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no exit code (killed by signal?)")
}

/// A per-test scratch dir holding three small generated traces and a
/// manifest naming them. Returns the manifest path.
fn fixture_corpus(dir_tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bwsa_cli_corpus_{dir_tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (bench, file) in [
        ("compress", "compress_a.bwss"),
        ("pgp", "pgp_a.bwss"),
        ("li", "li_a.bwss"),
    ] {
        let path = dir.join(file);
        let out = bwsa(&[
            "generate",
            bench,
            "--scale",
            "0.01",
            "--format",
            "bwss",
            "-o",
            path.to_str().unwrap(),
        ]);
        assert_eq!(exit_code(&out), 0, "generate {bench} failed: {out:?}");
    }
    write_manifest(
        &dir,
        "name = \"cli\"\n\n\
         [defaults]\n\
         threshold = 10\n\
         class = \"integer\"\n\n\
         [[trace]]\n\
         path = \"compress_a.bwss\"\n\n\
         [[trace]]\n\
         path = \"pgp_a.bwss\"\n\
         class = \"crypto\"\n\n\
         [[trace]]\n\
         path = \"li_a.bwss\"\n",
    )
}

fn write_manifest(dir: &Path, text: &str) -> PathBuf {
    let path = dir.join("corpus.toml");
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn corpus_misuse_exits_2() {
    // No manifest argument, unknown flag, bad flag values: all usage.
    for args in [
        vec!["corpus"],
        vec!["corpus", "/no/such.toml", "--frobnicate"],
        vec!["corpus", "/no/such.toml", "--jobs", "0"],
        vec!["corpus", "/no/such.toml", "--threshold", "none"],
        vec!["corpus", "/no/such.toml", "--report", "yaml"],
    ] {
        let out = bwsa(&args);
        assert_eq!(exit_code(&out), 2, "{args:?}: {out:?}");
    }
}

#[test]
fn missing_manifest_file_exits_1() {
    let out = bwsa(&["corpus", "/no/such/corpus.toml"]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
}

#[test]
fn malformed_manifest_exits_2() {
    let dir = std::env::temp_dir().join("bwsa_cli_corpus_malformed");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // Unparseable document.
    let m = write_manifest(&dir, "not a manifest at all [[[");
    let out = bwsa(&["corpus", m.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    // Dangling entry: parses, but the trace file does not exist.
    let m = write_manifest(&dir, "[[trace]]\npath = \"ghost.bwss\"\n");
    let out = bwsa(&["corpus", m.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("ghost.bwss"),
        "{out:?}"
    );
    // Duplicate trace paths.
    std::fs::write(dir.join("t.bwss"), b"placeholder").unwrap();
    let m = write_manifest(
        &dir,
        "[[trace]]\npath = \"t.bwss\"\n\n[[trace]]\npath = \"t.bwss\"\n",
    );
    let out = bwsa(&["corpus", m.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("duplicate"),
        "{out:?}"
    );
}

#[test]
fn good_corpus_exits_0_and_parallel_output_is_byte_identical() {
    let manifest = fixture_corpus("good");
    let m = manifest.to_str().unwrap();
    let serial = bwsa(&["corpus", m, "--jobs", "1", "--report", "json"]);
    assert_eq!(exit_code(&serial), 0, "{serial:?}");
    for jobs in ["2", "3", "8"] {
        let parallel = bwsa(&["corpus", m, "--jobs", jobs, "--report", "json"]);
        assert_eq!(exit_code(&parallel), 0, "{parallel:?}");
        assert_eq!(
            String::from_utf8_lossy(&serial.stdout),
            String::from_utf8_lossy(&parallel.stdout),
            "--jobs {jobs} corpus output diverged"
        );
    }
    // The human table reports all three entries ok.
    let text = bwsa(&["corpus", m]);
    assert_eq!(exit_code(&text), 0, "{text:?}");
    let stdout = String::from_utf8_lossy(&text.stdout);
    assert!(stdout.contains("3 entries"), "{stdout}");
    assert!(stdout.contains("3 ok, 0 degraded, 0 failed"), "{stdout}");
}

#[test]
fn emitted_fleet_summary_validates() {
    let manifest = fixture_corpus("emit");
    let fleet = manifest.parent().unwrap().join("fleet.json");
    let out = bwsa(&[
        "corpus",
        manifest.to_str().unwrap(),
        "--jobs",
        "2",
        "--emit-fleet",
        fleet.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let out = bwsa(&["validate-fleet", fleet.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("valid fleet summary"),
        "{out:?}"
    );
}

#[test]
fn validate_fleet_rejects_junk_and_wrong_versions() {
    let dir = std::env::temp_dir().join("bwsa_cli_corpus_validate");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // Missing file: runtime.
    let out = bwsa(&["validate-fleet", "/no/such/fleet.json"]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    // No positional: usage.
    let out = bwsa(&["validate-fleet"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    // Parseable JSON, wrong document.
    let p = dir.join("wrong.json");
    std::fs::write(&p, "{\"fleet_summary_version\": 999}").unwrap();
    let out = bwsa(&["validate-fleet", p.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    // A run report is not a fleet summary.
    std::fs::write(&p, "{\"run_report_version\": 3}").unwrap();
    let out = bwsa(&["validate-fleet", p.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
}

#[test]
fn cache_flag_conflicts_exit_2_before_io() {
    // Validation precedes I/O: the manifest path never exists, yet the
    // conflict is still reported as usage (2), not runtime (1).
    for args in [
        vec![
            "corpus",
            "/no/such.toml",
            "--no-cache",
            "--cache-dir",
            "/tmp/x",
        ],
        vec!["corpus", "/no/such.toml", "--no-cache", "--resume"],
    ] {
        let out = bwsa(&args);
        assert_eq!(exit_code(&out), 2, "{args:?}: {out:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--no-cache"),
            "{out:?}"
        );
    }
}

#[test]
fn warm_cache_rerun_is_all_hits_and_byte_identical() {
    let manifest = fixture_corpus("warm");
    let dir = manifest.parent().unwrap();
    let cache = dir.join("cache");
    let cold_fleet = dir.join("cold.json");
    let warm_fleet = dir.join("warm.json");
    let cold = bwsa(&[
        "corpus",
        manifest.to_str().unwrap(),
        "--cache-dir",
        cache.to_str().unwrap(),
        "--emit-fleet",
        cold_fleet.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&cold), 0, "{cold:?}");
    assert!(
        String::from_utf8_lossy(&cold.stderr).contains("cache: 0 hits, 3 misses"),
        "{cold:?}"
    );
    // A second run replays every entry from the cache — zero analyses —
    // and the emitted summary is byte-for-byte the cold one.
    let warm = bwsa(&[
        "corpus",
        manifest.to_str().unwrap(),
        "--cache-dir",
        cache.to_str().unwrap(),
        "--emit-fleet",
        warm_fleet.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&warm), 0, "{warm:?}");
    assert!(
        String::from_utf8_lossy(&warm.stderr).contains("cache: 3 hits, 0 misses"),
        "{warm:?}"
    );
    assert_eq!(
        std::fs::read(&cold_fleet).unwrap(),
        std::fs::read(&warm_fleet).unwrap(),
        "warm summary drifted from cold"
    );
    // --no-cache opts out entirely: no stats line, same bytes anyway.
    let fresh_fleet = dir.join("fresh.json");
    let fresh = bwsa(&[
        "corpus",
        manifest.to_str().unwrap(),
        "--no-cache",
        "--emit-fleet",
        fresh_fleet.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&fresh), 0, "{fresh:?}");
    assert!(!String::from_utf8_lossy(&fresh.stderr).contains("cache:"));
    assert_eq!(
        std::fs::read(&cold_fleet).unwrap(),
        std::fs::read(&fresh_fleet).unwrap(),
        "cached summary drifted from an uncached run"
    );
}

#[test]
fn torn_journal_resumes_from_the_rotated_ancestor() {
    let manifest = fixture_corpus("tornjournal");
    let dir = manifest.parent().unwrap();
    let m = manifest.to_str().unwrap();
    let baseline_fleet = dir.join("baseline.json");
    // Two runs: the second rotates the first's journal to journal.prev.
    let out = bwsa(&[
        "corpus",
        m,
        "--emit-fleet",
        baseline_fleet.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let out = bwsa(&["corpus", m]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let cache = dir.join(".bwsa-cache");
    assert!(cache.join("journal.prev").is_file(), "rotation missing");
    // Tear the newest journal's header beyond parsing; --resume must
    // fall back to the rotated ancestor, warn, and still produce the
    // byte-identical summary (the cache replays every entry).
    std::fs::write(cache.join("journal"), b"JU").unwrap();
    let resumed_fleet = dir.join("resumed.json");
    let out = bwsa(&[
        "corpus",
        m,
        "--resume",
        "--emit-fleet",
        resumed_fleet.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("previous good journal (3 completed entries)"),
        "{stderr}"
    );
    assert!(stderr.contains("cache: 3 hits, 0 misses"), "{stderr}");
    assert_eq!(
        std::fs::read(&baseline_fleet).unwrap(),
        std::fs::read(&resumed_fleet).unwrap(),
        "resumed summary drifted"
    );
}

#[test]
fn resume_without_a_journal_warns_and_starts_fresh() {
    let manifest = fixture_corpus("resumefresh");
    let out = bwsa(&["corpus", manifest.to_str().unwrap(), "--resume"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no run journal"), "{stderr}");
    assert!(stderr.contains("cache: 0 hits, 3 misses"), "{stderr}");
}

#[test]
fn corrupt_member_degrades_but_batch_exits_0() {
    let manifest = fixture_corpus("salvage");
    let dir = manifest.parent().unwrap();
    // Truncate one member mid-stream: salvage drops the damaged tail,
    // the entry is degraded (or failed if nothing survives), and the
    // batch still completes with exit 0.
    let victim = dir.join("pgp_a.bwss");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    let fleet = dir.join("fleet.json");
    let out = bwsa(&[
        "corpus",
        manifest.to_str().unwrap(),
        "--emit-fleet",
        fleet.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 ok"), "{stdout}");
    // And the emitted summary still validates against the fixture.
    let out = bwsa(&["validate-fleet", fleet.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
}
