//! Integration: §5.2 cumulative profiles across the workload, core, and
//! predictor crates.

use bwsa::core::merge::CumulativeProfile;
use bwsa::predictor::AllocatedIndex;
use bwsa::prelude::*;
use bwsa::trace::BranchTable;

const SCALE: f64 = 0.05;

fn remap(alloc: &AllocatedIndex, from: &BranchTable, to: &BranchTable) -> AllocatedIndex {
    let entries = to
        .iter()
        .map(|(_, pc)| from.id_of(pc).and_then(|id| alloc.entry(id)))
        .collect();
    AllocatedIndex::new(alloc.table_size(), entries).expect("valid entries")
}

#[test]
fn cumulative_profile_covers_more_branches_than_either_input() {
    let a = Benchmark::Ss.generate_scaled(InputSet::A, SCALE);
    let b = Benchmark::Ss.generate_scaled(InputSet::B, SCALE);
    let mut cp = CumulativeProfile::new();
    cp.add_trace(&a);
    cp.add_trace(&b);
    assert!(cp.table().len() >= a.static_branch_count());
    assert!(cp.table().len() >= b.static_branch_count());
    assert!(
        cp.table().len() <= a.static_branch_count() + b.static_branch_count(),
        "shared branches must not be double-counted"
    );
    // Input B (concentrated) sees branches A missed and vice versa.
    assert!(cp.table().len() > a.static_branch_count().max(b.static_branch_count()));
}

#[test]
fn union_allocation_covers_both_inputs_branches() {
    let a = Benchmark::Perl.generate_scaled(InputSet::A, SCALE);
    let b = Benchmark::Perl.generate_scaled(InputSet::B, SCALE);
    let mut cp = CumulativeProfile::new();
    cp.add_trace(&a);
    cp.add_trace(&b);
    let analysis = cp.conflict_analysis(ConflictConfig::with_threshold(5).unwrap());
    let alloc = allocate(&analysis.graph, 64, &AllocationConfig::default());
    // Remapped into either input's id space, every branch has an entry.
    for trace in [&a, &b] {
        let remapped = remap(&alloc.index, cp.table(), trace.table());
        assert_eq!(remapped.assigned_count(), trace.static_branch_count());
    }
}

#[test]
fn single_input_allocation_leaves_unseen_branches_unassigned() {
    let a = Benchmark::Ss.generate_scaled(InputSet::A, SCALE);
    let b = Benchmark::Ss.generate_scaled(InputSet::B, SCALE);
    let mut cp = CumulativeProfile::new();
    cp.add_trace(&a);
    let analysis = cp.conflict_analysis(ConflictConfig::with_threshold(5).unwrap());
    let alloc = allocate(&analysis.graph, 64, &AllocationConfig::default());
    let remapped = remap(&alloc.index, cp.table(), b.table());
    // Input B exercises regions A never visited: those branches have no
    // assignment (they fall back to pc indexing), matching the paper's
    // caveat about unprofiled code.
    assert!(
        remapped.assigned_count() < b.static_branch_count(),
        "expected some unassigned branches: {} of {}",
        remapped.assigned_count(),
        b.static_branch_count()
    );
}
