//! Exit-code contract for `--jobs`, exercised against the real binary:
//! 0 on success, 1 on runtime (I/O/data) failures, 2 on usage errors —
//! and byte-identical stdout between serial and parallel runs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bwsa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bwsa"))
        .args(args)
        .output()
        .expect("bwsa binary runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no exit code (killed by signal?)")
}

/// Generates a small deterministic trace for the given format, returning
/// its path inside a per-test temp directory.
fn fixture_trace_scaled(dir_tag: &str, format: &str, scale: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bwsa_cli_jobs_{dir_tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("t.{format}"));
    let out = bwsa(&[
        "generate",
        "pgp",
        "--scale",
        scale,
        "--format",
        format,
        "-o",
        path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "generate failed: {out:?}");
    path
}

fn fixture_trace(dir_tag: &str, format: &str) -> PathBuf {
    fixture_trace_scaled(dir_tag, format, "0.01")
}

#[test]
fn jobs_misuse_exits_2_before_touching_files() {
    for args in [
        ["analyze", "/no/such.bwst", "--jobs", "0"],
        ["analyze", "/no/such.bwst", "--jobs", "lots"],
        ["simulate", "/no/such.bwst", "--jobs", "0"],
        ["simulate", "/no/such.bwst", "--jobs", "2.5"],
    ] {
        let out = bwsa(&args);
        assert_eq!(exit_code(&out), 2, "{args:?}: {out:?}");
    }
}

#[test]
fn checkpointed_analyze_with_parallel_jobs_exits_2() {
    // The usage gate fires before I/O, so no real files are needed.
    let out = bwsa(&[
        "analyze",
        "/no/such.bwss",
        "--checkpoint",
        "c.bwck",
        "--jobs",
        "2",
    ]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let out = bwsa(&[
        "analyze",
        "/no/such.bwss",
        "--resume",
        "c.bwck",
        "--jobs",
        "4",
    ]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    // --jobs 1 passes the usage gate; the missing file is then exit 1.
    let out = bwsa(&[
        "analyze",
        "/no/such.bwss",
        "--checkpoint",
        "c.bwck",
        "--jobs",
        "1",
    ]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
}

#[test]
fn missing_trace_file_exits_1() {
    let out = bwsa(&["analyze", "/no/such/file.bwst", "--jobs", "2"]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
}

#[test]
fn parallel_analyze_stdout_is_byte_identical_to_serial() {
    for format in ["bwst", "bwss"] {
        let path = fixture_trace("analyze", format);
        let path = path.to_str().unwrap();
        let serial = bwsa(&["analyze", path, "--threshold", "3", "--jobs", "1"]);
        let parallel = bwsa(&["analyze", path, "--threshold", "3", "--jobs", "3"]);
        assert_eq!(exit_code(&serial), 0, "{serial:?}");
        assert_eq!(exit_code(&parallel), 0, "{parallel:?}");
        assert_eq!(
            String::from_utf8_lossy(&serial.stdout),
            String::from_utf8_lossy(&parallel.stdout),
            "{format}: parallel analyze output diverged"
        );
    }
}

#[test]
fn parallel_simulate_stdout_is_byte_identical_to_serial() {
    let path = fixture_trace("simulate", "bwst");
    let path = path.to_str().unwrap();
    let serial = bwsa(&["simulate", path, "--jobs", "1"]);
    let parallel = bwsa(&["simulate", path, "--jobs", "4"]);
    assert_eq!(exit_code(&serial), 0, "{serial:?}");
    assert_eq!(exit_code(&parallel), 0, "{parallel:?}");
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "parallel simulate output diverged"
    );
}

#[test]
fn checkpointed_simulate_still_works_with_jobs_flag() {
    // simulate's checkpoint path is a single sweep cell, so any --jobs
    // value is accepted and the checkpoint file is still produced. The
    // trace must span more than one 4096-record stream chunk for the
    // every-1-chunk cadence to fire at all.
    let path = fixture_trace_scaled("sim_ck", "bwst", "0.2");
    let dir = path.parent().unwrap();
    let ck = dir.join("sim.bwck");
    let ck_s = ck.to_str().unwrap();
    let out = bwsa(&[
        "simulate",
        path.to_str().unwrap(),
        "--predictor",
        "bimodal",
        "--checkpoint",
        ck_s,
        "--checkpoint-every",
        "1",
        "--jobs",
        "2",
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    assert!(ck.exists(), "checkpoint file was not written");
    // And resuming from it completes with the same final line.
    let resumed = bwsa(&[
        "simulate",
        path.to_str().unwrap(),
        "--predictor",
        "bimodal",
        "--resume",
        ck_s,
    ]);
    assert_eq!(exit_code(&resumed), 0, "{resumed:?}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&resumed.stdout)
    );
}
