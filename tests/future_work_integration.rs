//! Integration: the paper's future-work hypothesis — misprediction
//! clusters coincide with working-set changes — measured end to end on a
//! phase-structured workload.

use bwsa::core::phases::PhaseTimeline;
use bwsa::predictor::clustering::{clustering_stats, misprediction_flags};
use bwsa::prelude::*;

const WINDOW: usize = 500;

#[test]
fn mispredictions_cluster_more_at_phase_transitions() {
    let trace = Benchmark::Perl.generate_scaled(InputSet::A, 0.1);
    let timeline = PhaseTimeline::of_trace(&trace, WINDOW);
    let transitions: std::collections::HashSet<usize> =
        timeline.transitions(0.5).into_iter().collect();
    assert!(
        !transitions.is_empty(),
        "a phase-structured workload must show transitions"
    );

    let flags = misprediction_flags(&mut Pag::paper_baseline(), &trace);
    let mut trans = (0u64, 0u64);
    let mut stable = (0u64, 0u64);
    for (i, chunk) in flags.chunks_exact(WINDOW).enumerate() {
        let misses = chunk.iter().filter(|&&f| f).count() as u64;
        let acc = if transitions.contains(&i) {
            &mut trans
        } else {
            &mut stable
        };
        acc.0 += misses;
        acc.1 += WINDOW as u64;
    }
    let trans_rate = trans.0 as f64 / trans.1.max(1) as f64;
    let stable_rate = stable.0 as f64 / stable.1.max(1) as f64;
    assert!(
        trans_rate > stable_rate,
        "transition windows ({trans_rate:.4}) should mispredict more than stable ones ({stable_rate:.4})"
    );
}

#[test]
fn misprediction_process_is_overdispersed() {
    let trace = Benchmark::M88ksim.generate_scaled(InputSet::A, 0.1);
    let flags = misprediction_flags(&mut Pag::paper_baseline(), &trace);
    let stats = clustering_stats(&flags, WINDOW);
    assert!(
        stats.fano_factor > 1.0,
        "misses should cluster (fano {}), not arrive memorylessly",
        stats.fano_factor
    );
}

#[test]
fn timeline_working_sets_match_table2_scale() {
    // The windowed instantaneous working set should be on the order of
    // the region size the suite builds, far below the static population.
    let trace = Benchmark::Li.generate_scaled(InputSet::A, 0.1);
    let timeline = PhaseTimeline::of_trace(&trace, 2000);
    let mean = timeline.mean_working_set_size();
    assert!(mean > 10.0, "mean instantaneous WS {mean}");
    assert!(
        mean < trace.static_branch_count() as f64 * 0.8,
        "mean instantaneous WS {mean} vs {} static",
        trace.static_branch_count()
    );
}
