//! Full-scale shape assertions mirroring EXPERIMENTS.md.
//!
//! These run the real (unscaled) workloads, taking minutes per benchmark,
//! so they are `#[ignore]`d by default. Run them explicitly:
//!
//! ```text
//! cargo test --release --test shape_full_scale -- --ignored
//! ```

use bwsa::prelude::*;
use bwsa::trace::profile::FrequencyFilter;

fn full_analysis(bench: Benchmark) -> (bwsa::trace::Trace, bwsa::core::pipeline::Analysis) {
    let raw = bench.generate(InputSet::A);
    let (trace, _) = FrequencyFilter::MinExecutions(20).filter_trace(&raw);
    let analysis = AnalysisPipeline::new().run_observed(&trace, &Obs::noop());
    (trace, analysis)
}

#[test]
#[ignore = "full-scale run (minutes); see EXPERIMENTS.md"]
fn li_full_scale_reproduces_all_paper_shapes() {
    let (trace, analysis) = full_analysis(Benchmark::Li);
    let cfg = AllocationConfig::default();

    // Table 2 shape: execution-weighted working set far below static pop.
    let report = &analysis.working_sets.report;
    assert!(report.avg_dynamic_size > 100.0 && report.avg_dynamic_size < 250.0);
    assert!(report.avg_dynamic_size < trace.static_branch_count() as f64 / 4.0);

    // Tables 3–4 shape: far fewer than 1024 entries; classification shrinks.
    let plain = analysis
        .required_size(Classified(false), &trace, 1024, &cfg)
        .unwrap();
    let classified = analysis
        .required_size(Classified(true), &trace, 1024, &cfg)
        .unwrap();
    assert!(plain.size < 400, "plain {}", plain.size);
    assert!(
        classified.size < plain.size,
        "{} vs {}",
        classified.size,
        plain.size
    );

    // Figure 4 shape: alloc-1024 ≥ ~10% relative gain, ≈ interference-free.
    let allocation = analysis.allocation(Classified(true), 1024, &cfg).unwrap();
    let conventional = simulate(&mut Pag::paper_baseline(), &trace).misprediction_rate();
    let allocated = simulate(
        &mut Pag::paper_with_indexer(BhtIndexer::Allocated(allocation.index)),
        &trace,
    )
    .misprediction_rate();
    let free = simulate(&mut Pag::interference_free(), &trace).misprediction_rate();
    let gain = (conventional - allocated) / conventional;
    assert!(gain > 0.10, "relative gain {gain}");
    assert!(
        allocated <= free * 1.05,
        "allocated {allocated} vs free {free}"
    );
}

#[test]
#[ignore = "full-scale run (minutes); see EXPERIMENTS.md"]
fn compress_full_scale_matches_paper_table2_sizes() {
    let (_, analysis) = full_analysis(Benchmark::Compress);
    let report = &analysis.working_sets.report;
    // Paper: avg static 41, avg dynamic 25. Ours lands nearby.
    assert!(
        (20.0..=60.0).contains(&report.avg_dynamic_size),
        "avg dynamic {}",
        report.avg_dynamic_size
    );
    assert!(report.max_size < 100, "max {}", report.max_size);
}
