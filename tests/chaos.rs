//! Chaos suite: sweep every registered failpoint site, in every fault
//! mode, through the typed top-level API that wraps it.
//!
//! The contract under test is the repo's failure model (DESIGN.md §10):
//! whatever a failpoint does — unwind with a typed payload, unwind with a
//! plain panic, or stall — the result visible to a caller is either
//!
//! 1. output **bit-identical** to the fault-free baseline (the fault was
//!    retried or degraded around), or
//! 2. a **typed error** from the layer's public `Result` signature.
//!
//! Never a raw panic escaping the API, never silently different output.
//!
//! The failpoint registry is a process global, so every test here holds
//! [`CHAOS_LOCK`] and scopes its spec with [`failpoint::scoped`].

use bwsa::core::StreamingAnalysis;
use bwsa::graph::coloring::{try_color_graph, ColoringOptions};
use bwsa::graph::GraphBuilder;
use bwsa::obs::json::Json;
use bwsa::obs::Obs;
use bwsa::predictor::{simulate, sweep, Pag, SimCheckpoint, SweepCell};
use bwsa::prelude::*;
use bwsa::resilience::{failpoint, supervisor};
use bwsa::server::frame::{read_frame, DEFAULT_MAX_FRAME_BYTES};
use bwsa::server::server::ServerConfig;
use bwsa::server::{
    failpoints as server_failpoints, Client, ErrorCode, Response, Server, ServerHandle,
};
use bwsa::trace::stream::{StreamReader, StreamWriter};
use bwsa::trace::{Trace, TraceBuilder};
use std::num::NonZeroUsize;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    // A failed assertion in one chaos test must not wedge the rest.
    CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Every registered failpoint site in the workspace, by owning crate.
fn all_sites() -> Vec<&'static str> {
    let mut sites = Vec::new();
    sites.extend_from_slice(bwsa::trace::failpoints::SITES);
    sites.extend_from_slice(bwsa::graph::failpoints::SITES);
    sites.extend_from_slice(bwsa::predictor::failpoints::SITES);
    sites.extend_from_slice(bwsa::core::failpoints::SITES);
    sites.extend_from_slice(bwsa::corpus::failpoints::SITES);
    sites
}

/// The drivers: one deterministic operation per site, exercised through
/// the *typed* API layer that owns the site, returning a comparable
/// digest on success and the typed error's message on failure. A driver
/// must never unwind — that is exactly what the sweep asserts.
struct Harness {
    trace: Trace,
    bwss: Vec<u8>,
    bwst: Vec<u8>,
    /// On-disk corpus (manifest + traces) for the corpus cache/journal
    /// sites; each drive gets a fresh cache dir (see [`Harness::drive_corpus`]).
    corpus_dir: PathBuf,
}

impl Harness {
    fn new() -> Self {
        let mut b = TraceBuilder::new("chaos");
        let mut t = 1u64;
        for i in 0u64..240 {
            t += 1 + i % 3;
            b.record(0x4000 + (i % 8) * 4, i % 3 != 0, t);
        }
        let trace = b.finish();
        let mut bwss = Vec::new();
        let mut w = StreamWriter::new(&mut bwss, "chaos").unwrap();
        for r in trace.records() {
            w.push(*r).unwrap();
        }
        w.finish(4096).unwrap();
        let mut bwst = Vec::new();
        bwsa::trace::io::write_binary(&trace, &mut bwst).unwrap();
        let corpus_dir =
            std::env::temp_dir().join(format!("bwsa-chaos-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&corpus_dir).unwrap();
        std::fs::write(corpus_dir.join("a.bwss"), &bwss).unwrap();
        std::fs::write(corpus_dir.join("b.bwss"), &bwss).unwrap();
        let mut bws3 = Vec::new();
        bwsa::trace::columnar::write_columnar(&trace, &mut bws3).unwrap();
        std::fs::write(corpus_dir.join("c.bws3"), &bws3).unwrap();
        std::fs::write(
            corpus_dir.join("corpus.toml"),
            "name = \"chaos\"\n\n[defaults]\nthreshold = 10\n\n\
             [[trace]]\npath = \"a.bwss\"\n\n[[trace]]\npath = \"b.bwss\"\n\n\
             [[trace]]\npath = \"c.bws3\"\n",
        )
        .unwrap();
        Harness {
            trace,
            bwss,
            bwst,
            corpus_dir,
        }
    }

    fn drive(&self, site: &str) -> Result<String, String> {
        match site {
            "trace.decode_record" => self.drive_stream_decode(),
            "trace.read_binary" => self.drive_read_binary(),
            "graph.color" => self.drive_coloring(),
            "predictor.simulate" => self.drive_simulate(),
            "predictor.sweep_cell" => self.drive_sweep(),
            "predictor.checkpoint_save" => self.drive_sim_checkpoint(),
            "core.checkpoint_save" | "core.checkpoint_restore" => self.drive_analysis_checkpoint(),
            "core.window_flush" | "core.window_merge" | "core.recolor" => self.drive_windowed(),
            // These stages only exist on the serial path; a parallel
            // ladder would succeed on its first rung without ever
            // reaching them.
            "core.profile" | "core.interleave" => self.drive_session(Execution::Serial),
            other if other.starts_with("core.") => {
                self.drive_session(Execution::Parallel(ParallelConfig {
                    jobs: NonZeroUsize::new(2).unwrap(),
                    shards: NonZeroUsize::new(5),
                }))
            }
            "corpus.ingest_decode" => self.drive_corpus_ingest(),
            other if other.starts_with("corpus.") => self.drive_corpus(),
            other => panic!("no chaos driver for failpoint site '{other}'"),
        }
    }

    /// Supervised session over the degradation ladder; covers all
    /// pipeline-stage and shard sites.
    fn drive_session(&self, execution: Execution) -> Result<String, String> {
        let session = Session::new(&self.trace)
            .with_execution(execution)
            .with_supervisor(SupervisorConfig {
                backoff_base: Duration::from_millis(1),
                ..SupervisorConfig::default()
            });
        match session.run() {
            Ok(analysis) => Ok(format!("{analysis:?}")),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Cached corpus run over a fresh cache dir; covers the cache-read,
    /// cache-write, and journal-append sites. Cache and journal faults
    /// are contained *inside* the cache layer (a faulting read is a
    /// miss, a faulting write is an unwritten cell, a faulting append
    /// poisons the journal) — so the summary must always come out
    /// bit-identical, never a typed error. The cache dir is fresh per
    /// drive: every invocation is a cold run that traverses read, write,
    /// and append for every entry.
    fn drive_corpus(&self) -> Result<String, String> {
        static FRESH: AtomicU64 = AtomicU64::new(0);
        let cache = self
            .corpus_dir
            .join(format!("cache-{}", FRESH.fetch_add(1, Ordering::Relaxed)));
        let corpus =
            Corpus::open(&self.corpus_dir.join("corpus.toml")).map_err(|e| e.to_string())?;
        let summary = corpus.session().with_cache(&cache).run_all();
        let digest = summary.to_json().to_pretty_string();
        let _ = std::fs::remove_dir_all(&cache);
        Ok(digest)
    }

    /// Uncached corpus run; covers the per-entry ingest-decode site. A
    /// decode fault is contained to that entry's `failed` row while the
    /// batch completes, so the containment contract here is a typed
    /// per-entry error — never a changed summary passed off as clean.
    fn drive_corpus_ingest(&self) -> Result<String, String> {
        let corpus =
            Corpus::open(&self.corpus_dir.join("corpus.toml")).map_err(|e| e.to_string())?;
        let summary = corpus.session().run_all();
        if summary.failed > 0 {
            let message = summary
                .entries
                .iter()
                .find_map(|e| e.error.clone())
                .unwrap_or_else(|| "entry failed without a message".to_owned());
            return Err(message);
        }
        Ok(summary.to_json().to_pretty_string())
    }

    /// Streaming analysis save/load roundtrip; covers the analysis
    /// checkpoint sites.
    fn drive_analysis_checkpoint(&self) -> Result<String, String> {
        flatten(supervisor::catch(|| {
            let records = self.trace.records();
            let mut streaming = StreamingAnalysis::new("chaos");
            for r in &records[..records.len() / 2] {
                streaming.push(r);
            }
            let blob = streaming.save();
            let mut streaming = StreamingAnalysis::load(&blob).map_err(|e| e.to_string())?;
            for r in &records[records.len() / 2..] {
                streaming.push(r);
            }
            let analysis = streaming.finish_observed(&AnalysisPipeline::new(), &Obs::noop());
            Ok(format!("{analysis:?}"))
        }))
    }

    /// Windowed analysis over the session entry point; covers the
    /// window-flush, window-merge, and recolor sites. The windowed
    /// replay is not under the supervisor's retry ladder, so a fault
    /// here must surface as the typed boundary's error.
    fn drive_windowed(&self) -> Result<String, String> {
        flatten(supervisor::catch(|| {
            let config = WindowConfig::branches(64)
                .map_err(|e| e.to_string())?
                .with_table_size(64);
            let session = Session::new(&self.trace).with_windowing(config);
            let windowed = session.windowed().map_err(|e| e.to_string())?;
            Ok(format!("{windowed:?}"))
        }))
    }

    fn drive_stream_decode(&self) -> Result<String, String> {
        flatten(supervisor::catch(|| {
            let reader = StreamReader::new(&self.bwss[..]).map_err(|e| e.to_string())?;
            let mut count = 0u64;
            for record in reader {
                record.map_err(|e| e.to_string())?;
                count += 1;
            }
            Ok(format!("records:{count}"))
        }))
    }

    fn drive_read_binary(&self) -> Result<String, String> {
        flatten(supervisor::catch(|| {
            let trace = bwsa::trace::io::read_binary(&self.bwst[..]).map_err(|e| e.to_string())?;
            Ok(format!(
                "records:{} sites:{}",
                trace.len(),
                trace.static_branch_count()
            ))
        }))
    }

    fn drive_coloring(&self) -> Result<String, String> {
        flatten(supervisor::catch(|| {
            let mut b = GraphBuilder::new(6);
            b.add_edge(0, 1, 5).add_edge(1, 2, 5).add_edge(2, 0, 5);
            b.add_edge(3, 4, 2).add_edge(4, 5, 2);
            let coloring = try_color_graph(&b.build(), 2, &ColoringOptions::default())
                .map_err(|e| e.to_string())?;
            Ok(format!("{coloring:?}"))
        }))
    }

    fn drive_simulate(&self) -> Result<String, String> {
        flatten(supervisor::catch(|| {
            Ok(format!(
                "{:?}",
                simulate(&mut Pag::paper_baseline(), &self.trace)
            ))
        }))
    }

    /// The sweep has its own containment: a faulting cell surfaces as the
    /// typed `CellFailed` without any catch at this layer.
    fn drive_sweep(&self) -> Result<String, String> {
        let cells = vec![
            SweepCell::plain(Pag::paper_baseline(), &self.trace),
            SweepCell::plain(Pag::paper_baseline(), &self.trace),
        ];
        match sweep(cells, 2) {
            Ok(results) => Ok(format!("{results:?}")),
            Err(e) => Err(e.to_string()),
        }
    }

    fn drive_sim_checkpoint(&self) -> Result<String, String> {
        flatten(supervisor::catch(|| {
            let checkpoint = SimCheckpoint {
                predictor: "pag".into(),
                trace: "chaos".into(),
                records_consumed: 120,
                mispredictions: 17,
                predictor_state: vec![1, 2, 3, 4],
            };
            let bytes = checkpoint.to_bytes();
            let back = SimCheckpoint::from_bytes(&bytes).map_err(|e| e.to_string())?;
            Ok(format!("{back:?}"))
        }))
    }
}

/// Collapses "the typed boundary caught an unwind" and "the layer
/// returned its own typed error" into one `Err` channel.
fn flatten(
    outcome: Result<Result<String, String>, supervisor::ResilienceError>,
) -> Result<String, String> {
    match outcome {
        Ok(inner) => inner,
        Err(fault) => Err(fault.to_string()),
    }
}

/// Runs `site` under `spec` and asserts the containment contract:
/// baseline-identical output or a typed error — and never an unwind
/// escaping the driver (the outer catch must stay `Ok`).
fn assert_contained(harness: &Harness, site: &'static str, spec: &str, baseline: &str) {
    let guard = failpoint::scoped(spec).unwrap();
    let outcome = supervisor::catch(|| harness.drive(site));
    let outcome = outcome
        .unwrap_or_else(|fault| panic!("{spec}: raw unwind escaped the typed boundary: {fault}"));
    assert!(
        failpoint::hits(site) > 0,
        "{spec}: the driver never traversed the site"
    );
    match outcome {
        Ok(digest) => assert_eq!(
            digest, baseline,
            "{spec}: a fault-survivor run must be bit-identical to the baseline"
        ),
        Err(message) => assert!(
            !message.is_empty(),
            "{spec}: typed errors must carry a message"
        ),
    }
    drop(guard);
}

#[test]
fn the_failpoint_catalog_spans_the_required_surface() {
    // The chaos contract is only as strong as its coverage: at least a
    // dozen sites, in all five instrumented crates. (The server's sites
    // need a running daemon, so they get their own sweep below rather
    // than a `drive` arm.)
    let mut sites = all_sites();
    sites.extend_from_slice(server_failpoints::SITES);
    assert!(sites.len() >= 15, "only {} sites registered", sites.len());
    for prefix in [
        "trace.",
        "graph.",
        "predictor.",
        "core.",
        "server.",
        "corpus.",
    ] {
        assert!(
            sites.iter().any(|s| s.starts_with(prefix)),
            "no failpoint site in {prefix}*"
        );
    }
    let mut deduped = sites.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(deduped.len(), sites.len(), "duplicate site names");
}

#[test]
fn every_site_is_contained_in_error_mode() {
    let _lock = lock();
    failpoint::clear();
    let harness = Harness::new();
    for site in all_sites() {
        let baseline = harness.drive(site).unwrap();
        assert_contained(&harness, site, &format!("{site}=error(chaos)"), &baseline);
    }
}

#[test]
fn every_site_is_contained_in_panic_mode() {
    let _lock = lock();
    failpoint::clear();
    let harness = Harness::new();
    for site in all_sites() {
        let baseline = harness.drive(site).unwrap();
        assert_contained(&harness, site, &format!("{site}=panic(chaos)"), &baseline);
    }
}

#[test]
fn delay_mode_only_adds_latency() {
    let _lock = lock();
    failpoint::clear();
    let harness = Harness::new();
    for site in all_sites() {
        let baseline = harness.drive(site).unwrap();
        let _guard = failpoint::scoped(&format!("{site}=delay(1)")).unwrap();
        let delayed = harness.drive(site);
        assert_eq!(
            delayed.as_deref(),
            Ok(baseline.as_str()),
            "{site}: a pure delay must not change the result"
        );
    }
}

#[test]
fn transient_faults_are_absorbed_by_retry_and_degradation() {
    let _lock = lock();
    failpoint::clear();
    let harness = Harness::new();
    // One-shot faults on every supervised core stage: whether the ladder
    // recovers by shard retry, rung retry, or downgrade, the output must
    // be the fault-free output.
    for site in bwsa::core::failpoints::SITES {
        if site.starts_with("core.checkpoint")
            || site.starts_with("core.window")
            || *site == "core.recolor"
        {
            continue; // not on the supervised session path
        }
        let baseline = harness.drive(site).unwrap();
        let _guard = failpoint::scoped(&format!("{site}=1*error(transient)")).unwrap();
        let recovered = harness.drive(site);
        assert_eq!(
            recovered.as_deref(),
            Ok(baseline.as_str()),
            "{site}: a single transient fault must be absorbed"
        );
        assert!(failpoint::hits(site) > 0, "{site} never fired");
    }
}

#[test]
fn a_poisoned_columnar_block_degrades_one_entry_and_never_the_batch() {
    let _lock = lock();
    failpoint::clear();
    let harness = Harness::new();
    let dir = harness
        .corpus_dir
        .join(format!("poisoned-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Small blocks so one corrupt block loses a fraction of the trace,
    // not all of it: salvage drops the block and keeps the rest.
    let mut bws3 = Vec::new();
    {
        let mut w = bwsa::trace::columnar::ColumnarWriter::new(&mut bws3, "chaos").unwrap();
        w = w.with_block_records(64);
        for r in harness.trace.records() {
            w.push(*r).unwrap();
        }
        w.finish(4096).unwrap();
    }
    std::fs::write(dir.join("good.bws3"), &bws3).unwrap();
    // Flip one payload byte inside the first block (header=15 bytes for
    // the name "chaos", block header 36 more): the block CRC fails, the
    // footer's directory survives, and salvage skips just that block.
    let mut poisoned = bws3.clone();
    poisoned[60] ^= 0xFF;
    std::fs::write(dir.join("bad.bws3"), &poisoned).unwrap();
    std::fs::write(
        dir.join("corpus.toml"),
        "name = \"poisoned\"\n\n[defaults]\nthreshold = 10\n\n\
         [[trace]]\npath = \"good.bws3\"\n\n[[trace]]\npath = \"bad.bws3\"\n",
    )
    .unwrap();

    let corpus = Corpus::open(&dir.join("corpus.toml")).unwrap();
    let summary = corpus.session().run_all();
    assert_eq!(summary.entries.len(), 2);
    let good = summary
        .entries
        .iter()
        .find(|e| e.key == "good.bws3")
        .unwrap();
    let bad = summary
        .entries
        .iter()
        .find(|e| e.key == "bad.bws3")
        .unwrap();
    assert_eq!(good.status, bwsa::corpus::EntryStatus::Ok, "{good:?}");
    assert_eq!(
        bad.status,
        bwsa::corpus::EntryStatus::Degraded,
        "a poisoned block must degrade the entry, not fail it: {bad:?}"
    );
    assert!(bad.chunks_dropped > 0, "{bad:?}");
    assert!(
        bad.records < good.records,
        "the dropped block's records must be missing: {bad:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_runs_record_downgrades_and_retries_in_the_run_report() {
    let _lock = lock();
    failpoint::clear();
    let trace = Harness::new().trace;
    let plain = Session::new(&trace);
    let baseline = plain.run().unwrap();

    // A fault that only exists on the serial path: the supervised serial
    // session must degrade to streaming replay and still match.
    let _guard = failpoint::scoped("core.profile=error(stage exploded)").unwrap();
    let session = Session::new(&trace)
        .with_execution(Execution::Serial)
        .with_supervisor(SupervisorConfig {
            backoff_base: Duration::from_millis(1),
            ..SupervisorConfig::default()
        })
        .with_observer(Obs::recording());
    assert_eq!(session.run().unwrap(), baseline);

    let summary = session.resilience_summary().unwrap();
    assert!(summary.attempts >= 2, "summary: {summary:?}");
    assert!(
        summary
            .downgrades
            .iter()
            .any(|d| d.reason.contains("core.profile")),
        "downgrade reason must name the fault: {summary:?}"
    );
    assert!(!summary.faults.is_empty());

    // And the run report carries the same story for offline consumers.
    let report = session.run_report("chaos").unwrap();
    let doc = Json::parse(&report.to_json_string()).unwrap();
    let resilience = doc.get("resilience").unwrap();
    assert!(matches!(
        resilience.get("supervised"),
        Some(Json::Bool(true))
    ));
    assert!(resilience.get("attempts").and_then(Json::as_u64).unwrap() >= 2);
    assert!(resilience.get("retries").and_then(Json::as_u64).is_some());
    match resilience.get("downgrades") {
        Some(Json::Array(downgrades)) => {
            assert!(downgrades.iter().any(|d| {
                d.get("reason")
                    .and_then(Json::as_str)
                    .is_some_and(|r| r.contains("core.profile"))
            }));
        }
        other => panic!("downgrades missing: {other:?}"),
    }
}

#[test]
fn a_stalled_stage_is_cut_short_by_the_deadline() {
    let _lock = lock();
    failpoint::clear();
    let trace = Harness::new().trace;
    let plain = Session::new(&trace);
    let baseline = plain.run().unwrap();

    // Stall a serial-only stage far beyond the budget; every other rung
    // is fault-free, so the run still completes — without waiting out
    // the stall on retry after retry.
    let _guard = failpoint::scoped("core.interleave=delay(40)").unwrap();
    let session = Session::new(&trace)
        .with_execution(Execution::Serial)
        .with_supervisor(SupervisorConfig {
            backoff_base: Duration::from_millis(1),
            max_wall: Some(Duration::from_millis(10)),
            ..SupervisorConfig::default()
        });
    assert_eq!(session.run().unwrap(), baseline);
    let summary = session.resilience_summary().unwrap();
    assert!(
        summary.faults.iter().any(|f| f.contains("deadline")),
        "summary: {summary:?}"
    );
}

// ──────────────────────── server chaos sweep ────────────────────────
//
// The daemon hosts three more sites: accept, frame-parse, dispatch. Its
// containment contract is stronger than the library's — an injected
// fault must become a typed **error frame** on the affected request
// alone, the daemon must keep serving, a healthy request answered
// around the fault must be bit-identical to a direct `Session` run, and
// the drain afterwards must be clean. Zero daemon crashes, ever.

/// A fresh daemon on a socket unique to this test process and tag.
fn spawn_daemon(tag: &str) -> ServerHandle {
    let mut socket = std::env::temp_dir();
    socket.push(format!("bwsa-chaos-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    Server::bind(ServerConfig::new(socket)).unwrap().spawn()
}

/// What the daemon must answer for [`Harness::new`]'s BWSS2 payload:
/// the bytes parsed exactly as the server parses them, run through a
/// plain `Session`, rendered as the canonical summary JSON.
fn served_baseline(bwss: &[u8]) -> String {
    let mut reader = StreamReader::new(bwss).unwrap();
    let mut trace = Trace::new(reader.name().to_owned());
    for item in reader.by_ref() {
        trace.push(item.unwrap()).unwrap();
    }
    if let Some(total) = reader.total_instructions() {
        trace.meta_mut().total_instructions = total;
    }
    Session::new(&trace)
        .run()
        .unwrap()
        .summary_json()
        .to_pretty_string()
}

fn expect_served(response: Response, baseline: &str, context: &str) {
    match response {
        Response::Ok(json) => assert_eq!(json, baseline, "{context}: response drifted"),
        other => panic!("{context}: expected a served result, got {other:?}"),
    }
}

#[test]
fn every_server_site_is_contained_in_every_mode() {
    let _lock = lock();
    failpoint::clear();
    let harness = Harness::new();
    let baseline = served_baseline(&harness.bwss);

    for (s, &site) in server_failpoints::SITES.iter().enumerate() {
        for (m, mode) in ["panic(server chaos)", "error(server chaos)", "delay(10)"]
            .iter()
            .enumerate()
        {
            let faulting = m < 2;
            let context = format!("{site}=1*{mode}");
            let handle = spawn_daemon(&format!("sweep-{s}-{m}"));
            // The healthy witness connects before the fault is armed so
            // an accept-site fault cannot land on it. `connect` returns
            // when the kernel queues the connection, not when the accept
            // loop processes it — the ping round-trip is what proves the
            // witness's accept already happened.
            let mut witness = Client::connect(handle.socket(), "witness").unwrap();
            assert!(matches!(witness.ping().unwrap(), Response::Ok(_)));

            let guard = failpoint::scoped(&format!("{site}=1*{mode}")).unwrap();
            if site == server_failpoints::ACCEPT && faulting {
                // The fault fires at accept, before any request exists:
                // the daemon answers with an unsolicited typed Fault
                // frame on request id 0 and drops that connection.
                let mut probe = UnixStream::connect(handle.socket()).unwrap();
                probe
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let reply = read_frame(&mut probe, DEFAULT_MAX_FRAME_BYTES).unwrap();
                assert_eq!(reply.request_id, 0, "{context}");
                match Response::from_frame(&reply).unwrap() {
                    Response::Error { code, message, .. } => {
                        assert_eq!(code, ErrorCode::Fault, "{context}");
                        assert!(message.contains("contained"), "{context}: {message}");
                    }
                    other => panic!("{context}: expected a typed error frame, got {other:?}"),
                }
            } else {
                let mut probe = Client::connect(handle.socket(), "probe").unwrap();
                match probe.analyze(harness.bwss.clone(), None).unwrap() {
                    Response::Ok(json) => {
                        assert!(!faulting, "{context}: the fault was silently swallowed");
                        assert_eq!(
                            json, baseline,
                            "{context}: delay must not change the result"
                        );
                    }
                    Response::Error { code, message, .. } => {
                        assert!(
                            faulting,
                            "{context}: spurious failure in delay mode: {message}"
                        );
                        assert_eq!(code, ErrorCode::Fault, "{context}");
                        assert!(message.contains("contained"), "{context}: {message}");
                    }
                    Response::Window(json) => {
                        panic!("{context}: analyze must not stream window frames: {json}")
                    }
                }
            }
            assert!(failpoint::hits(site) > 0, "{context}: never traversed");
            drop(guard);

            // The daemon survived: the witness connection, opened before
            // the fault, is served bit-identically…
            expect_served(
                witness.analyze(harness.bwss.clone(), None).unwrap(),
                &baseline,
                &context,
            );
            // …and the drain afterwards is clean.
            handle.begin_shutdown();
            handle.join().unwrap();
        }
    }
}

#[test]
fn a_stalled_server_request_does_not_block_a_concurrent_tenant() {
    let _lock = lock();
    failpoint::clear();
    let harness = Harness::new();
    let baseline = served_baseline(&harness.bwss);
    let handle = spawn_daemon("stall");

    let _guard =
        failpoint::scoped(&format!("{}=1*delay(400)", server_failpoints::DISPATCH)).unwrap();
    let stalled_done = Arc::new(AtomicBool::new(false));
    let stalled = {
        let socket = handle.socket().to_path_buf();
        let bytes = harness.bwss.clone();
        let expected = baseline.clone();
        let done = Arc::clone(&stalled_done);
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket, "stalled").unwrap();
            let response = client.analyze(bytes, None).unwrap();
            done.store(true, Ordering::SeqCst);
            expect_served(response, &expected, "stalled tenant");
        })
    };
    // The hit counter bumps before the injected sleep starts, so this
    // spin exits while the stalled request sits inside its delay — and
    // the one-shot spec is already consumed, so the healthy tenant
    // cannot absorb it instead.
    while failpoint::hits(server_failpoints::DISPATCH) == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut healthy = Client::connect(handle.socket(), "healthy").unwrap();
    expect_served(
        healthy.analyze(harness.bwss.clone(), None).unwrap(),
        &baseline,
        "concurrent tenant",
    );
    assert!(
        !stalled_done.load(Ordering::SeqCst),
        "the healthy request must complete while the other tenant is still stalled"
    );
    stalled.join().unwrap();

    handle.begin_shutdown();
    handle.join().unwrap();
}
