//! Shed-then-recover contract for `bwsa client --retries`, exercised
//! against the real binaries: a request rejected at the daemon's shed
//! watermark is retried after the server's retry-after hint (plus
//! jittered backoff) until a worker frees, and the late answer is
//! byte-identical to the one the occupying tenant got.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bwsa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bwsa"))
        .args(args)
        .output()
        .expect("bwsa binary runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no exit code (killed by signal?)")
}

/// Kills the daemon on test failure so a panicking assert cannot leak
/// the child process.
struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn wait_for_socket(sock: &Path) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {sock:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn bad_retries_value_exits_2() {
    let out = bwsa(&["client", "/no/such.sock", "ping", "--retries", "lots"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--retries"),
        "{out:?}"
    );
}

#[test]
fn shed_request_is_retried_until_the_daemon_recovers() {
    let dir = std::env::temp_dir().join(format!("bwsa_cli_retry_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.bwss");
    let out = bwsa(&[
        "generate",
        "pgp",
        "--scale",
        "0.01",
        "--format",
        "bwss",
        "-o",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "generate failed: {out:?}");

    // One worker, shed watermark zero: while a request holds the slot,
    // every newcomer is refused with a retry-after hint. The one-shot
    // delay failpoint fires inside the first analyze's slot (decoding
    // its uploaded trace), pinning the slot busy for a full second.
    let sock = dir.join("daemon.sock");
    let daemon = Command::new(env!("CARGO_BIN_EXE_bwsa"))
        .args([
            "serve",
            sock.to_str().unwrap(),
            "--workers",
            "1",
            "--queue",
            "0",
        ])
        .env("BWSA_FAILPOINTS", "trace.decode_record=1*delay(1000)")
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let daemon = DaemonGuard(daemon);
    wait_for_socket(&sock);

    let occupier = {
        let sock: PathBuf = sock.clone();
        let trace = trace.clone();
        std::thread::spawn(move || {
            bwsa(&[
                "client",
                sock.to_str().unwrap(),
                "analyze",
                trace.to_str().unwrap(),
            ])
        })
    };
    // Land well inside the occupier's one-second stall so the first
    // attempt is genuinely shed.
    std::thread::sleep(Duration::from_millis(300));
    let retried = bwsa(&[
        "client",
        sock.to_str().unwrap(),
        "analyze",
        trace.to_str().unwrap(),
        "--retries",
        "40",
    ]);
    assert_eq!(exit_code(&retried), 0, "{retried:?}");
    let stderr = String::from_utf8_lossy(&retried.stderr);
    assert!(
        stderr.contains("server busy") && stderr.contains("retry"),
        "the request was never shed: {stderr}"
    );

    let occupied = occupier.join().unwrap();
    assert_eq!(exit_code(&occupied), 0, "{occupied:?}");
    assert_eq!(
        String::from_utf8_lossy(&occupied.stdout),
        String::from_utf8_lossy(&retried.stdout),
        "the retried answer drifted from the occupying tenant's"
    );

    let down = bwsa(&["client", sock.to_str().unwrap(), "shutdown"]);
    assert_eq!(exit_code(&down), 0, "{down:?}");
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}
