//! Exit-code and output contract for `analyze --window`, exercised
//! against the real binary: 2 on malformed/misused flags before any
//! I/O, 0 with a `windows:` summary line on success, a valid JSON
//! sidecar from `--emit-windows`, and a whole-trace summary that is
//! byte-identical to the unwindowed run.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bwsa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bwsa"))
        .args(args)
        .output()
        .expect("bwsa binary runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no exit code (killed by signal?)")
}

fn fixture_trace(dir_tag: &str, format: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bwsa_cli_window_{dir_tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("t.{format}"));
    let out = bwsa(&[
        "generate",
        "pgp",
        "--scale",
        "0.01",
        "--format",
        format,
        "-o",
        path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "generate failed: {out:?}");
    path
}

#[test]
fn window_misuse_exits_2_before_touching_files() {
    for args in [
        ["analyze", "/no/such.bwst", "--window", "0"],
        ["analyze", "/no/such.bwst", "--window", "0i"],
        ["analyze", "/no/such.bwst", "--window", "lots"],
        ["analyze", "/no/such.bwst", "--window", "-5"],
        ["analyze", "/no/such.bwst", "--window", "12x"],
    ] {
        let out = bwsa(&args);
        assert_eq!(exit_code(&out), 2, "{args:?}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--window"), "{args:?}: {err}");
    }
}

#[test]
fn emit_windows_without_window_exits_2() {
    let out = bwsa(&["analyze", "/no/such.bwst", "--emit-windows", "w.json"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--emit-windows needs --window"),
        "{out:?}"
    );
}

#[test]
fn window_with_checkpointing_exits_2() {
    for flag in ["--checkpoint", "--resume"] {
        let out = bwsa(&[
            "analyze",
            "/no/such.bwss",
            "--window",
            "100",
            flag,
            "c.bwck",
        ]);
        assert_eq!(exit_code(&out), 2, "{flag}: {out:?}");
    }
}

#[test]
fn windowed_analyze_prints_summary_and_preserves_the_whole_trace_answer() {
    for format in ["bwst", "bwss"] {
        let path = fixture_trace("green", format);
        let path = path.to_str().unwrap();
        let plain = bwsa(&["analyze", path, "--threshold", "3"]);
        let windowed = bwsa(&["analyze", path, "--threshold", "3", "--window", "100"]);
        assert_eq!(exit_code(&plain), 0, "{plain:?}");
        assert_eq!(exit_code(&windowed), 0, "{windowed:?}");
        let plain_out = String::from_utf8_lossy(&plain.stdout);
        let windowed_out = String::from_utf8_lossy(&windowed.stdout);
        let windows_line = windowed_out
            .lines()
            .find(|l| l.starts_with("windows: "))
            .unwrap_or_else(|| panic!("{format}: no windows line in {windowed_out}"));
        assert!(windows_line.contains("mean stability"), "{windows_line}");
        // Stripping the extra windows line leaves the unwindowed output.
        let stripped: String = windowed_out
            .lines()
            .filter(|l| !l.starts_with("windows: "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, plain_out, "{format}: analysis summary diverged");
    }
}

#[test]
fn emit_windows_writes_parseable_json_with_one_entry_per_window() {
    let path = fixture_trace("emit", "bwst");
    let sidecar = path.parent().unwrap().join("windows.json");
    let out = bwsa(&[
        "analyze",
        path.to_str().unwrap(),
        "--threshold",
        "3",
        "--window",
        "64i",
        "--emit-windows",
        sidecar.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let text = std::fs::read_to_string(&sidecar).expect("sidecar written");
    let json = bwsa::obs::json::Json::parse(&text).expect("sidecar parses");
    assert_eq!(
        json.get("window_unit")
            .and_then(bwsa::obs::json::Json::as_str),
        Some("instructions")
    );
    assert_eq!(
        json.get("window_interval")
            .and_then(bwsa::obs::json::Json::as_u64),
        Some(64)
    );
    let windows = json.get("windows").expect("windows array");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let count: u64 = stdout
        .lines()
        .find(|l| l.starts_with("windows: "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
        .expect("window count on the summary line");
    match windows {
        bwsa::obs::json::Json::Array(items) => assert_eq!(items.len() as u64, count),
        other => panic!("windows is not an array: {other:?}"),
    }
}
